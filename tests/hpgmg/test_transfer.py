"""Tests for multigrid transfer operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpgmg.transfer import (
    embed_interior,
    extract_interior,
    prolong_bilinear,
    restrict_full_weighting,
)


def test_embed_extract_roundtrip():
    u = np.arange(9.0)
    full = embed_interior(u, 5)
    assert full.shape == (5, 5)
    np.testing.assert_allclose(full[0], 0.0)
    np.testing.assert_allclose(extract_interior(full), u)


def test_embed_shape_validation():
    with pytest.raises(ValueError):
        embed_interior(np.zeros(8), 5)
    with pytest.raises(ValueError):
        extract_interior(np.zeros((3, 4)))


def test_prolong_injects_coarse_values():
    coarse = np.arange(9.0).reshape(3, 3)
    fine = prolong_bilinear(coarse)
    assert fine.shape == (5, 5)
    np.testing.assert_allclose(fine[::2, ::2], coarse)


def test_prolong_is_bilinear_interpolation():
    """Prolongation of a bilinear function is exact."""
    m = 5
    t = np.linspace(0, 1, m)
    Y, X = np.meshgrid(t, t, indexing="ij")
    coarse = 2.0 + 3.0 * X + 4.0 * Y + 5.0 * X * Y
    fine = prolong_bilinear(coarse)
    tf = np.linspace(0, 1, 2 * (m - 1) + 1)
    Yf, Xf = np.meshgrid(tf, tf, indexing="ij")
    np.testing.assert_allclose(fine, 2.0 + 3.0 * Xf + 4.0 * Yf + 5.0 * Xf * Yf,
                               atol=1e-12)


def test_restrict_shape_and_rim():
    fine = np.random.default_rng(0).random((9, 9))
    coarse = restrict_full_weighting(fine)
    assert coarse.shape == (5, 5)
    np.testing.assert_allclose(coarse[0], 0.0)
    np.testing.assert_allclose(coarse[:, -1], 0.0)


def test_restrict_is_transpose_of_prolong():
    """<P uc, vf> == <uc, R vf> on interior values (Dirichlet rims zero)."""
    rng = np.random.default_rng(1)
    m, n = 5, 9
    uc = np.zeros((m, m))
    uc[1:-1, 1:-1] = rng.standard_normal((m - 2, m - 2))
    vf = np.zeros((n, n))
    vf[1:-1, 1:-1] = rng.standard_normal((n - 2, n - 2))
    lhs = np.sum(prolong_bilinear(uc) * vf)
    rhs = np.sum(uc * restrict_full_weighting(vf))
    assert lhs == pytest.approx(rhs, rel=1e-12)


def test_restrict_input_validation():
    with pytest.raises(ValueError):
        restrict_full_weighting(np.zeros((8, 8)))  # even side
    with pytest.raises(ValueError):
        restrict_full_weighting(np.zeros((3, 5)))  # not square
    with pytest.raises(ValueError):
        prolong_bilinear(np.zeros((1, 1)))


@given(m=st.sampled_from([3, 5, 9]))
@settings(max_examples=10, deadline=None)
def test_property_prolong_preserves_constants_interior(m):
    """Prolongation of an all-ones lattice stays one away from the rim."""
    coarse = np.ones((m, m))
    fine = prolong_bilinear(coarse)
    np.testing.assert_allclose(fine, 1.0)


@given(seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_restrict_bounded(seed):
    """Transpose restriction's gain is bounded by the stencil weight sum (4)."""
    rng = np.random.default_rng(seed)
    fine = np.zeros((9, 9))
    fine[1:-1, 1:-1] = rng.uniform(-1, 1, (7, 7))
    coarse = restrict_full_weighting(fine)
    assert np.abs(coarse).max() <= 4.0 * np.abs(fine).max() + 1e-12
