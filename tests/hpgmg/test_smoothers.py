"""Tests for Jacobi and Chebyshev smoothers."""

import numpy as np
import pytest

from repro.hpgmg.operators import assemble, make_problem
from repro.hpgmg.smoothers import chebyshev, damped_jacobi, estimate_lambda_max


@pytest.fixture(scope="module")
def op():
    problem = make_problem("poisson1")
    return assemble(problem, problem.mesh(16))


def _residual_norm(op, u, f):
    return float(np.linalg.norm(f - op.A @ u))


def test_jacobi_reduces_residual(op):
    rng = np.random.default_rng(0)
    f = rng.standard_normal(op.n)
    u0 = np.zeros(op.n)
    r0 = _residual_norm(op, u0, f)
    u = damped_jacobi(op, u0, f, iterations=10)
    assert _residual_norm(op, u, f) < r0


def test_jacobi_zero_iterations_identity(op):
    u0 = np.ones(op.n)
    u = damped_jacobi(op, u0, np.zeros(op.n), iterations=0)
    np.testing.assert_allclose(u, u0)
    with pytest.raises(ValueError):
        damped_jacobi(op, u0, u0, iterations=-1)


def test_jacobi_fixed_point_is_solution(op):
    """The exact solution is a fixed point of the Jacobi iteration."""
    rng = np.random.default_rng(1)
    u_exact = rng.standard_normal(op.n)
    f = op.A @ u_exact
    u = damped_jacobi(op, u_exact.copy(), f, iterations=3)
    np.testing.assert_allclose(u, u_exact, atol=1e-12)


def test_lambda_max_estimate_bounds_spectrum(op):
    lam = estimate_lambda_max(op, rng=0)
    inv_diag = 1.0 / op.diag
    import scipy.sparse as sp

    D_inv_A = sp.diags(inv_diag) @ op.A
    true_lam = np.max(np.abs(np.linalg.eigvals(D_inv_A.toarray())))
    assert lam >= true_lam * 0.98  # safety factor keeps us at/above
    assert lam <= true_lam * 1.3


def test_chebyshev_smooths_high_frequencies(op):
    """Chebyshev must damp a random (high-frequency-rich) error strongly."""
    rng = np.random.default_rng(2)
    u_exact = rng.standard_normal(op.n)
    f = op.A @ u_exact
    lam = estimate_lambda_max(op, rng=0)
    u = chebyshev(op, np.zeros(op.n), f, degree=6, lambda_max=lam)
    # The error's high-frequency content (measured via D^{-1}A e) shrinks.
    e0 = u_exact
    e1 = u_exact - u
    rough = lambda e: np.linalg.norm(op.A @ e / op.diag)
    assert rough(e1) < 0.25 * rough(e0)


def test_chebyshev_beats_jacobi_same_work(op):
    """Chebyshev's minimax polynomial wins on the full-spectrum error norm.

    (On the *residual* norm alone, damped Jacobi with omega = 0.8 is already
    near-optimal for this operator's lambda_max ~ 1.5, so the fair
    comparison is the error itself at equal matvec count.)
    """
    rng = np.random.default_rng(3)
    u_exact = rng.standard_normal(op.n)
    f = op.A @ u_exact
    lam = estimate_lambda_max(op, rng=0)
    deg = 8
    u_ch = chebyshev(op, np.zeros(op.n), f, degree=deg, lambda_max=lam)
    u_ja = damped_jacobi(op, np.zeros(op.n), f, iterations=deg)
    assert np.linalg.norm(u_exact - u_ch) < np.linalg.norm(u_exact - u_ja)


def test_chebyshev_validation(op):
    f = np.zeros(op.n)
    u = np.zeros(op.n)
    with pytest.raises(ValueError):
        chebyshev(op, u, f, degree=0, lambda_max=2.0)
    with pytest.raises(ValueError):
        chebyshev(op, u, f, degree=2, lambda_max=-1.0)
    with pytest.raises(ValueError):
        chebyshev(op, u, f, degree=2, lambda_max=2.0, lambda_min_fraction=1.5)


def test_smoothers_deterministic(op):
    f = np.linspace(0, 1, op.n)
    lam = estimate_lambda_max(op, rng=0)
    a = chebyshev(op, np.zeros(op.n), f, degree=3, lambda_max=lam)
    b = chebyshev(op, np.zeros(op.n), f, degree=3, lambda_max=lam)
    np.testing.assert_array_equal(a, b)
