"""Tests for the assembled elliptic operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hpgmg.grid import Mesh
from repro.hpgmg.manufactured import nodal_interior_values
from repro.hpgmg.operators import (
    OPERATOR_NAMES,
    assemble,
    load_vector,
    make_problem,
)


@pytest.mark.parametrize("name", OPERATOR_NAMES)
def test_assembled_matrix_spd(name):
    problem = make_problem(name)
    op = assemble(problem, problem.mesh(4))
    A = op.A.toarray()
    np.testing.assert_allclose(A, A.T, atol=1e-12)
    assert np.linalg.eigvalsh(A).min() > 0


@pytest.mark.parametrize("name", OPERATOR_NAMES)
def test_operator_shapes(name):
    problem = make_problem(name)
    mesh = problem.mesh(4)
    op = assemble(problem, mesh)
    assert op.n == mesh.n_interior
    assert op.diag.shape == (op.n,)
    np.testing.assert_allclose(op.diag, op.A.diagonal())


def test_poisson1_matches_classical_fe_laplacian():
    """Q1, kappa=1, no shear: row sums of A vanish for interior-only rows.

    The FE Laplacian annihilates constants; rows whose stencil does not
    touch the boundary must sum to zero exactly.
    """
    problem = make_problem("poisson1")
    mesh = problem.mesh(8)
    op = assemble(problem, mesh)
    # Find interior nodes at lattice distance >= 2 from the rim.
    n = mesh.nodes_per_side
    ids = mesh.interior_ids()
    deep = []
    for local, gid in enumerate(ids):
        iy, ix = divmod(int(gid), n)
        if 2 <= ix <= n - 3 and 2 <= iy <= n - 3:
            deep.append(local)
    row_sums = np.asarray(op.A.sum(axis=1)).ravel()
    np.testing.assert_allclose(row_sums[deep], 0.0, atol=1e-12)


def test_poisson1_diagonal_value():
    """Q1 Laplacian diagonal is 8/3 (h-independent in 2-D)."""
    problem = make_problem("poisson1")
    op = assemble(problem, problem.mesh(8))
    np.testing.assert_allclose(op.diag, 8.0 / 3.0, atol=1e-12)


def test_apply_and_residual_counting():
    problem = make_problem("poisson1")
    op = assemble(problem, problem.mesh(4))
    u = np.ones(op.n)
    f = np.zeros(op.n)
    assert op.apply_count == 0
    op.apply(u)
    assert op.apply_count == 1
    r = op.residual(u, f)
    assert op.apply_count == 2
    np.testing.assert_allclose(r, -(op.A @ u))


def test_coarsen_rediscretizes():
    problem = make_problem("poisson2")
    fine = assemble(problem, problem.mesh(8))
    coarse = fine.coarsen()
    assert coarse.mesh.ne == 4
    assert coarse.problem is problem
    assert coarse.n < fine.n


def test_mesh_order_mismatch_rejected():
    problem = make_problem("poisson2")  # order 2
    with pytest.raises(ValueError, match="order"):
        assemble(problem, Mesh(ne=4, order=1))


def test_unknown_operator():
    with pytest.raises(ValueError, match="unknown operator"):
        make_problem("poisson3")


def test_negative_coefficient_rejected():
    from repro.hpgmg.operators import Problem

    bad = Problem("bad", order=1, shear=0.0, kappa=lambda x, y: x - 10.0)
    with pytest.raises(ValueError, match="positive"):
        assemble(bad, bad.mesh(4))


@pytest.mark.parametrize("name", OPERATOR_NAMES)
def test_galerkin_identity_for_linears(name):
    """Energy inner product of the exact solution is positive and finite."""
    problem = make_problem(name)
    mesh = problem.mesh(8)
    op = assemble(problem, mesh)
    from repro.hpgmg.manufactured import exact_solution

    u = nodal_interior_values(mesh, exact_solution)
    energy = u @ op.apply(u)
    assert np.isfinite(energy)
    assert energy > 0


def test_load_vector_constant_source():
    """For f=1, the load vector sums to ~|Omega| (interior portion)."""
    problem = make_problem("poisson1")
    mesh = problem.mesh(16)
    b = load_vector(problem, mesh, lambda x, y: np.ones_like(x))
    # Total load over ALL nodes equals the domain area; the interior share
    # approaches 1 as the boundary layer thins.
    assert 0.8 < b.sum() < 1.0


def test_load_vector_scales_with_jacobian():
    """The sheared mesh has |J| = h^2 (area-preserving shear)."""
    p_id = make_problem("poisson1")
    b1 = load_vector(p_id, p_id.mesh(8), lambda x, y: np.ones_like(x))
    from repro.hpgmg.operators import Problem, _kappa_constant

    p_shear = Problem("s", order=1, shear=0.7, kappa=_kappa_constant)
    b2 = load_vector(p_shear, p_shear.mesh(8), lambda x, y: np.ones_like(x))
    np.testing.assert_allclose(b1, b2, atol=1e-12)


@pytest.mark.parametrize("name", OPERATOR_NAMES)
def test_solution_solves_weak_form(name):
    """Direct solve of A u = b converges to the manufactured solution."""
    from repro.hpgmg.manufactured import (
        discretization_error,
        source_term,
    )

    problem = make_problem(name)
    errs = []
    for ne in (8, 16):
        mesh = problem.mesh(ne)
        op = assemble(problem, mesh)
        b = load_vector(problem, mesh, source_term(problem))
        u = sp.linalg.spsolve(op.A.tocsc(), b)
        errs.append(discretization_error(problem, u, mesh))
    rate = np.log2(errs[0] / errs[1])
    assert rate > 1.6  # ~2nd order
