"""Property tests for the dimension-generic reference elements (3-D focus)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpgmg.fem import reference_element


@pytest.mark.parametrize("order", [1, 2])
@pytest.mark.parametrize("dim", [1, 2, 3])
def test_shapes_and_quadrature(order, dim):
    ref = reference_element(order, dim)
    nb = (order + 1) ** dim
    nq = (order + 1) ** dim
    assert ref.n_basis == nb
    assert ref.dim == dim
    assert ref.stiffness.shape == (dim, dim, nb, nb)
    assert ref.quad_points.shape == (nq, dim)
    assert ref.quad_weights.sum() == pytest.approx(1.0)
    assert ref.local_offsets.shape == (nb, dim)


@pytest.mark.parametrize("order", [1, 2])
@pytest.mark.parametrize("dim", [2, 3])
def test_partition_of_unity_at_quadrature(order, dim):
    ref = reference_element(order, dim)
    np.testing.assert_allclose(ref.basis_at_quad.sum(axis=0), 1.0, atol=1e-12)


@pytest.mark.parametrize("order", [1, 2])
@pytest.mark.parametrize("dim", [2, 3])
def test_stiffness_annihilates_constants(order, dim):
    ref = reference_element(order, dim)
    ones = np.ones(ref.n_basis)
    for a in range(dim):
        for b in range(dim):
            np.testing.assert_allclose(ref.stiffness[a, b] @ ones, 0.0, atol=1e-12)


@pytest.mark.parametrize("order", [1, 2])
def test_3d_mass_matrix_properties(order):
    ref = reference_element(order, 3)
    M = ref.mass
    assert M.sum() == pytest.approx(1.0, rel=1e-12)
    np.testing.assert_allclose(M, M.T, atol=1e-14)
    assert np.linalg.eigvalsh(M).min() > 0


def test_q1_3d_laplacian_matches_textbook_diagonal():
    """The trilinear hexahedral Laplacian has diagonal 1/3 (unit cube)."""
    ref = reference_element(1, 3)
    K = ref.stiffness[0, 0] + ref.stiffness[1, 1] + ref.stiffness[2, 2]
    np.testing.assert_allclose(np.diag(K), 1.0 / 3.0, atol=1e-12)


def test_local_offsets_ordering_is_axis_major():
    ref = reference_element(1, 3)
    # index = (k * 2 + j) * 2 + i: offsets enumerate x fastest.
    expected = [
        (0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0),
        (0, 0, 1), (1, 0, 1), (0, 1, 1), (1, 1, 1),
    ]
    np.testing.assert_array_equal(ref.local_offsets, expected)


@given(
    order=st.sampled_from([1, 2]),
    gx=st.floats(0.2, 5.0),
    gy=st.floats(0.2, 5.0),
    gz=st.floats(0.2, 5.0),
)
@settings(max_examples=15, deadline=None)
def test_property_3d_contracted_stiffness_psd(order, gx, gy, gz):
    ref = reference_element(order, 3)
    Ke = gx * ref.stiffness[0, 0] + gy * ref.stiffness[1, 1] + gz * ref.stiffness[2, 2]
    np.testing.assert_allclose(Ke, Ke.T, atol=1e-12)
    assert np.linalg.eigvalsh(Ke).min() > -1e-11


def test_invalid_dim():
    with pytest.raises(ValueError):
        reference_element(1, 0)
