"""Tests for the HPGMG-FE-style benchmark harness."""

import dataclasses

import pytest

from repro.hpgmg.benchmark import run_benchmark


def test_benchmark_runs_and_verifies():
    result = run_benchmark("poisson1", 8, rng=0)
    assert result.converged
    assert result.dofs == 49
    assert result.dofs_per_second > 0
    assert result.solve_seconds > 0
    assert result.setup_seconds > 0
    assert result.verification_error < 0.05
    assert result.final_relative_residual <= 1e-8
    assert result.work_units > 0


def test_benchmark_q2_operator():
    result = run_benchmark("poisson2affine", 8, rng=0)
    assert result.converged
    assert result.dofs == 225  # (2*8 - 1)^2


def test_benchmark_rejects_unknown_operator():
    with pytest.raises(ValueError, match="unknown operator"):
        run_benchmark("laplace", 8)


def test_benchmark_result_frozen():
    result = run_benchmark("poisson1", 4, rng=0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        result.dofs = 0


def test_larger_problem_is_not_slower_per_dof():
    """DOF/s should not degrade drastically with size (multigrid is O(N))."""
    small = run_benchmark("poisson1", 8, rng=0)
    large = run_benchmark("poisson1", 32, rng=0)
    assert large.dofs_per_second > small.dofs_per_second * 0.5
