"""Tests for the V-cycle / FMG multigrid solver."""

import numpy as np
import pytest

from repro.hpgmg.manufactured import (
    discretization_error,
    source_term,
)
from repro.hpgmg.multigrid import MultigridSolver
from repro.hpgmg.operators import OPERATOR_NAMES, load_vector, make_problem


@pytest.fixture(scope="module", params=OPERATOR_NAMES)
def solver_and_rhs(request):
    problem = make_problem(request.param)
    solver = MultigridSolver(problem, 16, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    return problem, solver, f


def test_hierarchy_structure(solver_and_rhs):
    _, solver, _ = solver_and_rhs
    assert solver.n_levels == 4  # 16 -> 8 -> 4 -> 2
    sizes = [op.mesh.ne for op in solver.levels]
    assert sizes == [16, 8, 4, 2]


def test_vcycle_contracts_error(solver_and_rhs):
    _, solver, f = solver_and_rhs
    u = solver.vcycle(f)
    fine = solver.levels[0]
    r1 = np.linalg.norm(fine.residual(u, f))
    u = solver.vcycle(f, u)
    r2 = np.linalg.norm(fine.residual(u, f))
    assert r2 < 0.35 * r1  # healthy multigrid contraction


def test_solve_converges(solver_and_rhs):
    _, solver, f = solver_and_rhs
    result = solver.solve(f, rtol=1e-9)
    assert result.converged
    assert result.residual_history[-1] <= 1e-9
    assert result.cycles <= 15
    assert result.work_units > 0
    assert result.seconds >= 0


def test_fmg_reaches_discretization_accuracy(solver_and_rhs):
    """One FMG pass should land within a small factor of h^2 accuracy."""
    problem, solver, f = solver_and_rhs
    u_fmg = solver.fmg(f)
    err_fmg = discretization_error(problem, u_fmg, solver.levels[0].mesh)
    result = solver.solve(f, rtol=1e-10)
    err_exact = discretization_error(problem, result.u, solver.levels[0].mesh)
    assert err_fmg <= 3.0 * err_exact


@pytest.mark.parametrize("name", OPERATOR_NAMES)
def test_mms_convergence_second_order(name):
    problem = make_problem(name)
    errs = []
    for ne in (8, 16, 32):
        solver = MultigridSolver(problem, ne, rng=0)
        f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
        result = solver.solve(f, rtol=1e-9)
        errs.append(
            discretization_error(problem, result.u, solver.levels[0].mesh)
        )
    rates = [np.log2(errs[i] / errs[i + 1]) for i in range(2)]
    assert min(rates) > 1.7


def test_zero_rhs_returns_zero():
    problem = make_problem("poisson1")
    solver = MultigridSolver(problem, 8, rng=0)
    result = solver.solve(np.zeros(solver.dofs))
    np.testing.assert_allclose(result.u, 0.0)
    assert result.converged


def test_solve_rejects_bad_shape():
    problem = make_problem("poisson1")
    solver = MultigridSolver(problem, 8, rng=0)
    with pytest.raises(ValueError):
        solver.solve(np.zeros(solver.dofs + 1))


def test_jacobi_smoother_variant_converges():
    problem = make_problem("poisson1")
    solver = MultigridSolver(problem, 16, smoother="jacobi", pre_smooth=3,
                             post_smooth=3, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    result = solver.solve(f, rtol=1e-8, max_cycles=40)
    assert result.converged


def test_invalid_smoother():
    with pytest.raises(ValueError):
        MultigridSolver(make_problem("poisson1"), 8, smoother="sor")


def test_no_fmg_path():
    problem = make_problem("poisson1")
    solver = MultigridSolver(problem, 8, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    result = solver.solve(f, rtol=1e-8, use_fmg=False)
    assert result.converged
    # Without FMG the first history entry is the unpreconditioned residual.
    assert result.residual_history[0] == pytest.approx(1.0)


def test_max_cycles_respected():
    problem = make_problem("poisson2affine")
    solver = MultigridSolver(problem, 8, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    result = solver.solve(f, rtol=1e-300, max_cycles=3)
    assert not result.converged
    assert result.cycles == 3


def test_work_units_accumulate():
    problem = make_problem("poisson1")
    solver = MultigridSolver(problem, 8, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    r1 = solver.solve(f)
    r2 = solver.solve(f)
    # Per-solve accounting must not double-count earlier work.
    assert abs(r1.work_units - r2.work_units) < 0.6 * max(r1.work_units, r2.work_units)
