"""Tests for the reference finite elements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpgmg.fem import _lagrange_1d, gauss_rule, reference_element


@pytest.mark.parametrize("n", [1, 2, 3, 5])
def test_gauss_rule_integrates_polynomials_exactly(n):
    pts, wts = gauss_rule(n)
    assert wts.sum() == pytest.approx(1.0)
    for degree in range(2 * n):
        exact = 1.0 / (degree + 1)  # integral of x^degree over [0, 1]
        assert np.sum(wts * pts**degree) == pytest.approx(exact, rel=1e-12)


def test_gauss_rule_invalid():
    with pytest.raises(ValueError):
        gauss_rule(0)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_lagrange_partition_of_unity(order):
    x = np.linspace(0, 1, 17)
    vals, ders = _lagrange_1d(order, x)
    np.testing.assert_allclose(vals.sum(axis=0), 1.0, atol=1e-12)
    np.testing.assert_allclose(ders.sum(axis=0), 0.0, atol=1e-10)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_lagrange_kronecker_at_nodes(order):
    nodes = np.linspace(0, 1, order + 1)
    vals, _ = _lagrange_1d(order, nodes)
    np.testing.assert_allclose(vals, np.eye(order + 1), atol=1e-12)


def test_lagrange_derivative_matches_fd():
    x = np.linspace(0.05, 0.95, 7)
    eps = 1e-6
    for order in (1, 2):
        _, ders = _lagrange_1d(order, x)
        vp, _ = _lagrange_1d(order, x + eps)
        vm, _ = _lagrange_1d(order, x - eps)
        np.testing.assert_allclose(ders, (vp - vm) / (2 * eps), atol=1e-6)


@pytest.mark.parametrize("order", [1, 2])
def test_reference_element_shapes(order):
    ref = reference_element(order)
    nb = (order + 1) ** 2
    assert ref.n_basis == nb
    assert ref.stiffness.shape == (2, 2, nb, nb)
    assert ref.mass.shape == (nb, nb)
    assert ref.local_offsets.shape == (nb, 2)
    assert ref.quad_weights.sum() == pytest.approx(1.0)


@pytest.mark.parametrize("order", [1, 2])
def test_stiffness_tensor_symmetry(order):
    """R[a, b, i, j] == R[b, a, j, i] so G:R is symmetric for symmetric G."""
    R = reference_element(order).stiffness
    np.testing.assert_allclose(R[0, 1], R[1, 0].T, atol=1e-14)
    np.testing.assert_allclose(R[0, 0], R[0, 0].T, atol=1e-14)
    np.testing.assert_allclose(R[1, 1], R[1, 1].T, atol=1e-14)


@pytest.mark.parametrize("order", [1, 2])
def test_stiffness_annihilates_constants(order):
    """Gradients of a constant field vanish: R contracted with 1s is 0."""
    R = reference_element(order).stiffness
    ones = np.ones(R.shape[-1])
    for a in range(2):
        for b in range(2):
            np.testing.assert_allclose(R[a, b] @ ones, 0.0, atol=1e-13)


def test_q1_stiffness_matches_textbook():
    """The Q1 Laplacian element matrix on the unit square is known exactly."""
    R = reference_element(1).stiffness
    K = R[0, 0] + R[1, 1]
    expected = (1.0 / 6.0) * np.array(
        [
            [4, -1, -1, -2],
            [-1, 4, -2, -1],
            [-1, -2, 4, -1],
            [-2, -1, -1, 4],
        ]
    )
    np.testing.assert_allclose(K, expected, atol=1e-12)


@pytest.mark.parametrize("order", [1, 2])
def test_mass_matrix_total_is_one(order):
    """Sum of all mass entries = integral of 1 over the unit square."""
    M = reference_element(order).mass
    assert M.sum() == pytest.approx(1.0, rel=1e-12)
    # Mass matrices are SPD.
    assert np.linalg.eigvalsh(M).min() > 0


def test_reference_element_cached():
    assert reference_element(1) is reference_element(1)


def test_reference_element_invalid_order():
    with pytest.raises(ValueError):
        reference_element(0)


@given(order=st.sampled_from([1, 2]), gx=st.floats(0.2, 5.0), gy=st.floats(0.2, 5.0))
@settings(max_examples=20, deadline=None)
def test_property_contracted_stiffness_psd(order, gx, gy):
    """For any diagonal SPD tensor G, K_e = G:R is symmetric PSD."""
    R = reference_element(order).stiffness
    Ke = gx * R[0, 0] + gy * R[1, 1]
    np.testing.assert_allclose(Ke, Ke.T, atol=1e-12)
    assert np.linalg.eigvalsh(Ke).min() > -1e-12
