"""Tests for the matrix-free Q1 stencil operator."""

import numpy as np
import pytest

from repro.hpgmg.operators import Problem, assemble, make_problem
from repro.hpgmg.stencil import StencilOperator, q1_stencil, stencil_supported


def test_supported_flavours():
    assert stencil_supported(make_problem("poisson1"))
    assert not stencil_supported(make_problem("poisson2"))  # Q2
    variable_q1 = Problem(
        "varq1", order=1, shear=0.0, kappa=lambda x, y: 1.0 + x
    )
    assert not stencil_supported(variable_q1)


def test_q1_stencil_is_the_fe_laplacian():
    """kappa=1, no shear: the classical FE 9-point stencil (1/3 scaling)."""
    problem = make_problem("poisson1")
    stencil = q1_stencil(problem, problem.mesh(8))
    expected = (1.0 / 3.0) * np.array(
        [[-1, -1, -1], [-1, 8, -1], [-1, -1, -1]]
    )
    np.testing.assert_allclose(stencil, expected, atol=1e-12)


def test_unsupported_rejected():
    problem = make_problem("poisson2")
    with pytest.raises(ValueError, match="matrix-free"):
        q1_stencil(problem, problem.mesh(4))


@pytest.mark.parametrize("ne", [4, 16])
def test_matches_assembled_operator(ne):
    """Matrix-free apply == CSR SpMV to machine precision."""
    problem = make_problem("poisson1")
    mesh = problem.mesh(ne)
    sparse_op = assemble(problem, mesh)
    stencil_op = StencilOperator(problem=problem, mesh=mesh)
    assert stencil_op.n == sparse_op.n
    np.testing.assert_allclose(stencil_op.diag, sparse_op.diag, atol=1e-12)
    rng = np.random.default_rng(0)
    for _ in range(3):
        u = rng.standard_normal(sparse_op.n)
        np.testing.assert_allclose(
            stencil_op.apply(u), sparse_op.apply(u), atol=1e-11
        )


def test_sheared_mesh_stencil_matches():
    """The affine shear produces an asymmetric stencil; still exact."""
    problem = Problem(
        "sheared_q1", order=1, shear=0.4,
        kappa=make_problem("poisson1").kappa,
    )
    mesh = problem.mesh(8)
    sparse_op = assemble(problem, mesh)
    stencil_op = StencilOperator(problem=problem, mesh=mesh)
    u = np.random.default_rng(1).standard_normal(sparse_op.n)
    np.testing.assert_allclose(stencil_op.apply(u), sparse_op.apply(u), atol=1e-11)


def test_apply_counting_and_shape_check():
    problem = make_problem("poisson1")
    op = StencilOperator(problem=problem, mesh=problem.mesh(4))
    op.apply(np.zeros(op.n))
    r = op.residual(np.zeros(op.n), np.ones(op.n))
    assert op.apply_count == 2
    np.testing.assert_allclose(r, 1.0)
    with pytest.raises(ValueError):
        op.apply(np.zeros(op.n + 1))


def test_works_inside_multigrid_smoothers():
    """The stencil operator satisfies the smoother protocol."""
    from repro.hpgmg.smoothers import chebyshev, estimate_lambda_max

    problem = make_problem("poisson1")
    mesh = problem.mesh(16)
    op = StencilOperator(problem=problem, mesh=mesh)
    sparse_op = assemble(problem, mesh)
    rng = np.random.default_rng(2)
    u_exact = rng.standard_normal(op.n)
    f = sparse_op.apply(u_exact)
    lam = estimate_lambda_max(op, rng=0)
    u = chebyshev(op, np.zeros(op.n), f, degree=6, lambda_max=lam)
    assert np.linalg.norm(u - u_exact) < np.linalg.norm(u_exact)
