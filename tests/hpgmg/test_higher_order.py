"""Higher-order elements come for free from the generic FE machinery.

The mini benchmark only *uses* Q1/Q2 (the real HPGMG-FE's orders), but the
reference-element + assembly pipeline is order-generic; these tests pin
that generality with Q3.
"""

import numpy as np
import pytest
import scipy.sparse.linalg as spla


from repro.hpgmg.manufactured import discretization_error, source_term
from repro.hpgmg.operators import Problem, _kappa_constant, assemble, load_vector


@pytest.fixture(scope="module")
def q3_problem():
    return Problem("q3", order=3, shear=0.0, kappa=_kappa_constant)


def test_q3_assembly_spd(q3_problem):
    op = assemble(q3_problem, q3_problem.mesh(2))
    A = op.A.toarray()
    np.testing.assert_allclose(A, A.T, atol=1e-12)
    assert np.linalg.eigvalsh(A).min() > 0
    assert op.n == (3 * 2 + 1 - 2) ** 2


def test_q3_mms_fourth_order(q3_problem):
    """Direct solves converge at ~O(h^4) in the nodal max norm."""
    src = source_term(Problem("poisson1", 1, 0.0, _kappa_constant))
    errs = []
    for ne in (2, 4, 8):
        mesh = q3_problem.mesh(ne)
        op = assemble(q3_problem, mesh)
        b = load_vector(q3_problem, mesh, src)
        u = spla.spsolve(op.A.tocsc(), b)
        errs.append(discretization_error(q3_problem, u, mesh))
    rates = [np.log2(errs[i] / errs[i + 1]) for i in range(2)]
    assert min(rates) > 3.0


def test_q3_multigrid_converges(q3_problem):
    """Node lattices halve 2:1 for *any* order (o*ne + 1 -> o*ne/2 + 1), so
    the full geometric multigrid stack works for Q3 unchanged — and hits
    the Q3 discretization accuracy."""
    from repro.hpgmg.multigrid import MultigridSolver

    solver = MultigridSolver(q3_problem, 8, rng=0)
    src = source_term(Problem("poisson1", 1, 0.0, _kappa_constant))
    f = load_vector(q3_problem, solver.levels[0].mesh, src)
    result = solver.solve(f, rtol=1e-10, max_cycles=40)
    assert result.converged
    err = discretization_error(q3_problem, result.u, solver.levels[0].mesh)
    assert err < 2e-5  # the O(h^4) regime, far below Q1/Q2 at this ne
