"""Property-based tests: multigrid solves random smooth problems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpgmg import MultigridSolver, load_vector, make_problem


@given(
    operator=st.sampled_from(["poisson1", "poisson2", "poisson2affine"]),
    amp=st.floats(-5.0, 5.0),
    kx=st.integers(1, 3),
    ky=st.integers(1, 3),
)
@settings(max_examples=12, deadline=None)
def test_property_solver_converges_on_smooth_sources(operator, amp, kx, ky):
    """Any smooth separable source is solved to tolerance in few cycles."""
    problem = make_problem(operator)
    solver = MultigridSolver(problem, 8, rng=0)
    mesh = solver.levels[0].mesh

    def source(x, y):
        return amp * np.sin(kx * np.pi * x) * np.sin(ky * np.pi * y)

    f = load_vector(problem, mesh, source)
    result = solver.solve(f, rtol=1e-8, max_cycles=25)
    assert result.converged
    # Linearity sanity: residual history strictly decreases after FMG.
    hist = result.residual_history
    assert all(b <= a * 0.9 + 1e-14 for a, b in zip(hist, hist[1:]))


@given(scale=st.floats(0.1, 100.0))
@settings(max_examples=10, deadline=None)
def test_property_solution_linear_in_rhs(scale):
    """A u = f is linear: scaling f scales u."""
    problem = make_problem("poisson1")
    solver = MultigridSolver(problem, 8, rng=0)
    mesh = solver.levels[0].mesh
    f = load_vector(problem, mesh, lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y))
    u1 = solver.solve(f, rtol=1e-10).u
    u2 = solver.solve(scale * f, rtol=1e-10).u
    np.testing.assert_allclose(u2, scale * u1, rtol=1e-6, atol=1e-10)
