"""Tests for structured meshes and hierarchies."""

import numpy as np
import pytest

from repro.hpgmg.grid import Mesh, coarsen, hierarchy_sizes


def test_lattice_counts():
    m = Mesh(ne=4, order=1)
    assert m.nodes_per_side == 5
    assert m.n_nodes == 25
    assert m.n_interior == 9
    q2 = Mesh(ne=4, order=2)
    assert q2.nodes_per_side == 9
    assert q2.n_interior == 49


def test_h_and_jacobian():
    m = Mesh(ne=8, order=1, shear=0.5)
    assert m.h == pytest.approx(0.125)
    J = m.jacobian
    np.testing.assert_allclose(J, np.array([[1.0, 0.5], [0.0, 1.0]]) * 0.125)
    assert np.linalg.det(J) == pytest.approx(0.125**2)


def test_physical_coords_sheared():
    m = Mesh(ne=2, order=1, shear=1.0)
    X, Y = m.physical_node_coords()
    Xr, Yr = m.reference_node_coords()
    np.testing.assert_allclose(X, Xr + Yr)
    np.testing.assert_allclose(Y, Yr)


def test_interior_mask_and_ids():
    m = Mesh(ne=2, order=1)  # 3x3 lattice, single interior node (1,1) -> id 4
    ids = m.interior_ids()
    np.testing.assert_array_equal(ids, [4])
    assert m.interior_mask().sum() == 1


def test_node_index_y_major():
    m = Mesh(ne=2, order=1)
    assert m.node_index(0, 0) == 0
    assert m.node_index(2, 0) == 2
    assert m.node_index(0, 1) == 3
    assert m.node_index(2, 2) == 8


@pytest.mark.parametrize("order", [1, 2])
def test_element_node_ids_cover_lattice(order):
    m = Mesh(ne=4, order=order)
    conn = m.element_node_ids()
    assert conn.shape == (16, (order + 1) ** 2)
    assert set(conn.ravel().tolist()) == set(range(m.n_nodes))


def test_element_node_ids_local_ordering():
    m = Mesh(ne=2, order=1)  # 3x3 lattice
    conn = m.element_node_ids()
    # Element 0 covers nodes (0,0),(1,0),(0,1),(1,1) -> ids 0,1,3,4.
    np.testing.assert_array_equal(conn[0], [0, 1, 3, 4])
    # Element (1,1) (flattened index 3) covers ids 4,5,7,8.
    np.testing.assert_array_equal(conn[3], [4, 5, 7, 8])


def test_element_centers():
    m = Mesh(ne=2, order=1)
    cx, cy = m.element_centers()
    np.testing.assert_allclose(sorted(set(cx)), [0.25, 0.75])
    assert cx.shape == (4,)


def test_coarsen():
    m = Mesh(ne=8, order=2, shear=0.3)
    c = coarsen(m)
    assert c.ne == 4
    assert c.order == 2
    assert c.shear == 0.3
    with pytest.raises(ValueError):
        coarsen(Mesh(ne=3))
    with pytest.raises(ValueError):
        coarsen(Mesh(ne=1))


def test_hierarchy_sizes():
    assert hierarchy_sizes(16, ne_coarsest=2) == [16, 8, 4, 2]
    assert hierarchy_sizes(2, ne_coarsest=2) == [2]
    assert hierarchy_sizes(12, ne_coarsest=3) == [12, 6, 3]
    with pytest.raises(ValueError):
        hierarchy_sizes(12, ne_coarsest=5)
    with pytest.raises(ValueError):
        hierarchy_sizes(1, ne_coarsest=2)
    with pytest.raises(ValueError):
        hierarchy_sizes(8, ne_coarsest=0)


def test_mesh_validation():
    with pytest.raises(ValueError):
        Mesh(ne=0)
    with pytest.raises(ValueError):
        Mesh(ne=2, order=0)


def test_cache_does_not_affect_equality():
    a, b = Mesh(ne=4), Mesh(ne=4)
    a.interior_ids()  # populate cache on one only
    assert a == b
