"""Tests for batched AL runs over random partitions."""

import numpy as np
import pytest

from repro.al import (
    CostEfficiency,
    VarianceReduction,
    default_model_factory,
    run_batch,
)


def _data(n=50, seed=0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 10, size=n))[:, np.newaxis]
    y = 0.3 * X[:, 0] + 0.05 * rng.standard_normal(n)
    costs = np.exp(y)
    return X, y, costs


def _run(strategy_factory, **kw):
    X, y, costs = _data()
    defaults = dict(
        n_partitions=3,
        n_iterations=8,
        seed=1,
        model_factory=default_model_factory(1e-2),
    )
    defaults.update(kw)
    return run_batch(X, y, costs, strategy_factory=strategy_factory, **defaults)


def test_batch_shapes():
    result = _run(lambda i: VarianceReduction())
    assert result.n_partitions == 3
    mat = result.series_matrix("rmse")
    assert mat.shape == (3, 8)
    assert result.mean_series("rmse").shape == (8,)
    assert result.std_series("amsd").shape == (8,)


def test_strategy_factory_receives_index():
    seen = []

    def factory(i):
        seen.append(i)
        return VarianceReduction()

    _run(factory)
    assert seen == [0, 1, 2]


def test_same_seed_same_partitions():
    """Two strategies with the same seed see identical partitions (Fig. 8)."""
    vr = _run(lambda i: VarianceReduction())
    ce = _run(lambda i: CostEfficiency())
    # Iteration-0 metrics depend only on the seed model => identical.
    np.testing.assert_allclose(
        vr.series_matrix("rmse")[:, 0], ce.series_matrix("rmse")[:, 0]
    )


def test_different_seed_different_partitions():
    a = _run(lambda i: VarianceReduction(), seed=1)
    b = _run(lambda i: VarianceReduction(), seed=2)
    assert not np.allclose(
        a.series_matrix("rmse")[:, 0], b.series_matrix("rmse")[:, 0]
    )


def test_batch_name_from_strategy():
    assert _run(lambda i: CostEfficiency()).strategy == "cost-efficiency"


def _record(i):
    from repro.al.learner import IterationRecord

    return IterationRecord(
        iteration=i, n_train=1, selected_pool_index=0,
        x_selected=np.zeros(1), y_selected=0.0, sd_at_selected=1.0,
        cost=1.0, cumulative_cost=float(i + 1), rmse=1.0, amsd=1.0,
        gmsd=1.0, nlpd=1.0, noise_variance=0.1, lml=0.0,
    )


def test_series_matrix_truncates_to_common_length():
    from repro.al.learner import ALTrace
    from repro.al.runner import BatchResult

    t1 = ALTrace(strategy="s", records=[_record(0), _record(1), _record(2)])
    t2 = ALTrace(strategy="s", records=[_record(0), _record(1)])
    result = BatchResult(strategy="s", traces=[t1, t2])
    # Uneven traces must warn, naming the dropped iteration count.
    with pytest.warns(RuntimeWarning, match=r"drops 1 recorded iteration"):
        mat = result.series_matrix("rmse")
    assert mat.shape == (2, 2)


def test_series_matrix_even_traces_do_not_warn():
    import warnings

    from repro.al.learner import ALTrace
    from repro.al.runner import BatchResult

    traces = [
        ALTrace(strategy="s", records=[_record(0), _record(1)]),
        ALTrace(strategy="s", records=[_record(0), _record(1)]),
    ]
    result = BatchResult(strategy="s", traces=traces)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert result.series_matrix("rmse").shape == (2, 2)


def test_empty_batch_rejected():
    from repro.al.runner import BatchResult

    with pytest.raises(ValueError):
        BatchResult(strategy="s", traces=[]).series_matrix("rmse")


def test_aggregate_series():
    from repro.al import aggregate_series

    result = _run(lambda i: VarianceReduction())
    its, mean, std = aggregate_series(result, "rmse")
    assert its.shape == mean.shape == std.shape == (8,)
    np.testing.assert_allclose(mean, result.mean_series("rmse"))


def test_parallel_matches_serial():
    """Every backend x worker count must be bit-identical to the serial run.

    Regression test for the GIL-bound thread fan-out this layer replaced:
    the process backend must return the *same trajectories*, not just
    statistically similar ones, and the explicit ``serial``/``thread``
    backends must agree with it.
    """
    serial = _run(lambda i: VarianceReduction(seed=i), n_workers=1)
    runs = {
        "serial-x4": _run(
            lambda i: VarianceReduction(seed=i), n_workers=4, backend="serial"
        ),
        "thread-x4": _run(
            lambda i: VarianceReduction(seed=i), n_workers=4, backend="thread"
        ),
        "process-x2": _run(
            lambda i: VarianceReduction(seed=i), n_workers=2, backend="process"
        ),
        "process-x4": _run(
            lambda i: VarianceReduction(seed=i), n_workers=4, backend="process"
        ),
    }
    for label, parallel in runs.items():
        for attr in ("rmse", "amsd", "cumulative_cost", "sd_at_selected"):
            np.testing.assert_array_equal(
                serial.series_matrix(attr),
                parallel.series_matrix(attr),
                err_msg=f"{label}: {attr} diverged from serial",
            )


def test_stateful_factory_safe_under_process_backend():
    """Factories may close over shared state: construction is parent-side."""
    shared_rng = np.random.default_rng(5)

    def factory(i):
        return VarianceReduction(seed=int(shared_rng.integers(1 << 30)))

    a = _run(factory, n_workers=2, backend="process")
    shared_rng = np.random.default_rng(5)  # rewind
    b = _run(factory, n_workers=1, backend="serial")
    np.testing.assert_array_equal(
        a.series_matrix("rmse"), b.series_matrix("rmse")
    )


def test_invalid_workers():
    with pytest.raises(ValueError):
        _run(lambda i: VarianceReduction(), n_workers=0)
