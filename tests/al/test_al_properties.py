"""Property-based tests of active-learning loop invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.al import (
    ActiveLearner,
    CostEfficiency,
    RandomSampling,
    VarianceReduction,
    default_model_factory,
    random_partition,
)


def _problem(n, seed):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 10, size=n))[:, np.newaxis]
    y = 0.4 * X[:, 0] + 0.1 * rng.standard_normal(n)
    costs = np.exp(0.2 * X[:, 0])
    return X, y, costs


@given(
    n=st.integers(15, 60),
    seed=st.integers(0, 50),
    strategy_kind=st.sampled_from(["vr", "ce", "random"]),
)
@settings(max_examples=12, deadline=None)
def test_property_al_loop_invariants(n, seed, strategy_kind):
    X, y, costs = _problem(n, seed)
    part = random_partition(n, rng=seed)
    strategy = {
        "vr": VarianceReduction(),
        "ce": CostEfficiency(),
        "random": RandomSampling(seed=seed),
    }[strategy_kind]
    learner = ActiveLearner(
        X, y, costs, part, strategy,
        model_factory=default_model_factory(1e-1),
    )
    k = min(6, learner.pool.n_available)
    trace = learner.run(k)

    # 1. Exactly k iterations, training set grows by k.
    assert len(trace) == k
    assert learner.n_train == part.initial.size + k

    # 2. Pool shrank by k; selected indices are distinct.
    assert learner.pool.n_available == part.active.size - k
    picks = [r.selected_pool_index for r in trace.records]
    assert len(set(picks)) == k

    # 3. Costs accumulate exactly and monotonically.
    cum = trace.series("cumulative_cost")
    assert np.all(np.diff(cum) > 0)
    np.testing.assert_allclose(cum[-1], sum(r.cost for r in trace.records))

    # 4. Every queried (x, y) pair exists in the original dataset.
    for r in trace.records:
        rows = np.flatnonzero((X == r.x_selected).all(axis=1))
        assert any(np.isclose(y[i], r.y_selected) for i in rows)

    # 5. Metrics are finite and positive where applicable.
    for name in ("rmse", "amsd", "gmsd", "sd_at_selected"):
        series = trace.series(name)
        assert np.all(np.isfinite(series))
        assert np.all(series >= 0)


@given(seed=st.integers(0, 30))
@settings(max_examples=10, deadline=None)
def test_property_vr_picks_pool_argmax(seed):
    """Every VR selection attains the maximal SD among available records.

    Exact SD ties (e.g. the near-constant prior of the seed iteration) are
    broken randomly, so the assertion is membership in the tied-max set,
    not equality with ``np.argmax``.
    """
    X, y, costs = _problem(40, seed)
    part = random_partition(40, rng=seed)
    learner = ActiveLearner(
        X, y, costs, part, VarianceReduction(),
        model_factory=default_model_factory(1e-1),
    )
    for _ in range(4):
        avail_before = learner.pool.available_indices().copy()
        X_avail = learner.pool.available_X().copy()
        record = learner.step()
        model = learner.model
        _, sd = model.predict(X_avail, return_std=True)
        tied_max = avail_before[np.flatnonzero(sd == sd.max())]
        assert record.selected_pool_index in tied_max
