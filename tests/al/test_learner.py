"""Tests for the active-learning loop."""

import numpy as np
import pytest

from repro.al import (
    ActiveLearner,
    VarianceReduction,
    default_model_factory,
    random_partition,
)


def _problem(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 10, size=n))[:, np.newaxis]
    y = 0.5 * X[:, 0] + np.sin(X[:, 0]) + 0.05 * rng.standard_normal(n)
    costs = np.abs(y) + 1.0
    return X, y, costs


def _learner(seed=0, **kw):
    X, y, costs = _problem(seed=seed)
    part = random_partition(X.shape[0], rng=seed)
    defaults = dict(model_factory=default_model_factory(noise_floor=1e-2))
    defaults.update(kw)
    return ActiveLearner(X, y, costs, part, VarianceReduction(), **defaults)


def test_run_produces_trace():
    learner = _learner()
    trace = learner.run(10)
    assert len(trace) == 10
    assert trace.strategy == "variance-reduction"
    assert trace.selected_points.shape == (10, 1)


def test_training_set_grows():
    learner = _learner()
    assert learner.n_train == 1  # paper: single seed experiment
    learner.step()
    assert learner.n_train == 2
    learner.run(3)
    assert learner.n_train == 5


def test_cumulative_cost_monotone_and_correct():
    learner = _learner()
    trace = learner.run(8)
    cum = trace.series("cumulative_cost")
    costs = trace.series("cost")
    assert np.all(np.diff(cum) > 0)
    np.testing.assert_allclose(np.cumsum(costs), cum)


def test_rmse_improves():
    learner = _learner()
    trace = learner.run(25)
    rmse = trace.series("rmse")
    assert rmse[-1] < 0.5 * rmse[0]


def test_queried_values_match_dataset():
    X, y, costs = _problem()
    part = random_partition(X.shape[0], rng=0)
    learner = ActiveLearner(
        X, y, costs, part, VarianceReduction(),
        model_factory=default_model_factory(1e-2),
    )
    trace = learner.run(5)
    for rec in trace.records:
        # The measured y of the selected x must be the dataset value.
        matches = np.flatnonzero((X == rec.x_selected).all(axis=1))
        assert any(y[m] == rec.y_selected for m in matches)


def test_pool_exhaustion_run_stops():
    learner = _learner()
    n_pool = learner.pool.n_available
    trace = learner.run(10_000)  # asks for more than exists
    assert len(trace) == n_pool
    assert learner.pool.exhausted
    with pytest.raises(ValueError, match="exhausted"):
        learner.step()


def test_noise_floor_schedule_applied():
    floors = []

    def schedule(iteration):
        floor = 0.5 / np.sqrt(iteration + 1)
        floors.append(floor)
        return floor

    learner = _learner(noise_floor_schedule=schedule)
    trace = learner.run(5)
    assert len(floors) == 5
    for rec, floor in zip(trace.records, floors):
        assert rec.noise_variance >= floor * 0.999


def test_bad_noise_floor_schedule_rejected():
    learner = _learner(noise_floor_schedule=lambda i: -1.0)
    with pytest.raises(ValueError, match="positive"):
        learner.step()


def test_iteration_record_fields():
    learner = _learner()
    rec = learner.step()
    assert rec.iteration == 0
    assert rec.n_train == 1
    assert rec.sd_at_selected > 0
    assert rec.rmse > 0
    assert rec.amsd > 0
    assert np.isfinite(rec.lml)
    assert rec.cost > 0


def test_input_validation():
    X, y, costs = _problem()
    part = random_partition(X.shape[0], rng=0)
    with pytest.raises(ValueError):
        ActiveLearner(X, y[:-1], costs, part, VarianceReduction())
    with pytest.raises(ValueError):
        ActiveLearner(X[:-1], y[:-1], costs[:-1], part, VarianceReduction())
    learner = _learner()
    with pytest.raises(ValueError):
        learner.run(-1)


def test_deterministic_runs():
    t1 = _learner(seed=3).run(6)
    t2 = _learner(seed=3).run(6)
    np.testing.assert_allclose(t1.series("rmse"), t2.series("rmse"))
    np.testing.assert_allclose(
        t1.selected_points, t2.selected_points
    )


def test_trace_final_and_empty():
    from repro.al import ALTrace

    with pytest.raises(ValueError):
        ALTrace(strategy="x").final
    learner = _learner()
    learner.run(2)
    assert learner.trace.final.iteration == 1


def test_fixed_noise_bounds_with_schedule_rejected():
    """Regression: a schedule used to silently replace 'fixed' bounds with a
    numeric interval, re-enabling noise optimization behind the caller's back."""
    from repro.gp import GaussianProcessRegressor

    def fixed_factory():
        return GaussianProcessRegressor(
            noise_variance=0.1, noise_variance_bounds="fixed", rng=0
        )

    learner = _learner(
        model_factory=fixed_factory,
        noise_floor_schedule=lambda i: 0.5 / np.sqrt(i + 1),
    )
    with pytest.raises(ValueError, match="fixed"):
        learner.step()


def test_fixed_noise_bounds_without_schedule_still_work():
    from repro.gp import GaussianProcessRegressor

    def fixed_factory():
        return GaussianProcessRegressor(
            noise_variance=0.1, noise_variance_bounds="fixed", rng=0
        )

    learner = _learner(model_factory=fixed_factory)
    rec = learner.step()
    assert rec.noise_variance == pytest.approx(0.1)


def test_large_noise_floor_widens_upper_bound():
    """Regression: noise_floor > 1e3 used to produce an inverted bounds box."""
    factory = default_model_factory(noise_floor=5e3)
    model = factory()
    low, high = model.noise_variance_bounds
    assert low == 5e3
    assert high == 5e4
    assert low < high
    model.fit(np.linspace(0, 1, 8)[:, np.newaxis], np.arange(8.0))
    assert low <= model.noise_variance_ <= high


def test_default_model_factory_validates_noise_floor():
    for bad in (0.0, -1.0, np.nan, np.inf):
        with pytest.raises(ValueError, match="noise_floor"):
            default_model_factory(noise_floor=bad)


def test_learner_refits_cost_model_on_primary_cadence():
    """Regression: CostModelEfficiency's cost model went stale (fitted once,
    never updated).  Inside the learner it must now be refitted alongside
    every full primary-model refit, on exactly the costs observed so far."""
    from repro.al import CostModelEfficiency

    X, y, costs = _problem()
    part = random_partition(X.shape[0], rng=0, n_initial=3)
    strat = CostModelEfficiency(seed=0)
    learner = ActiveLearner(
        X, y, costs, part, strat,
        model_factory=default_model_factory(noise_floor=1e-2),
    )
    trace = learner.run(4)
    assert len(trace) == 4
    assert strat.cost_model is not None and strat.cost_model.fitted
    # Refit happens at fit time, before that iteration's selection: the
    # final (4th) refit saw the initial partition plus the 3 records
    # consumed by iterations 1-3.
    assert strat.cost_model.n_train_ == 3 + 3


def test_fuse_repeats_consumes_and_pools_duplicates():
    """With fuse_repeats, selecting a repeated configuration consumes every
    available sibling and trains on their precision-weighted mean."""
    # 4 distinct configs; config 0 measured 3 times with spread responses.
    X = np.array([[0.0], [0.0], [0.0], [3.0], [6.0], [9.0], [1.5], [4.5], [7.5]])
    y = np.array([1.0, 1.2, 0.8, 2.0, 3.0, 4.0, 1.5, 2.5, 3.5])
    costs = np.ones(9)
    from repro.al import Partition, VarianceReduction

    part = Partition(
        initial=np.array([3, 5]),
        active=np.array([0, 1, 2, 4, 6]),
        test=np.array([7, 8]),
    )
    learner = ActiveLearner(
        X, y, costs, part, VarianceReduction(seed=0),
        model_factory=default_model_factory(noise_floor=1e-2),
        fuse_repeats=True,
        repeat_noise_variance=0.04,
    )
    trace = learner.run(4)
    fused = [r for r in trace.records if r.n_fused > 1]
    assert fused, "the triple-measured config was never fused"
    rec = fused[0]
    assert rec.n_fused == 3
    assert rec.y_selected == pytest.approx(np.mean([1.0, 1.2, 0.8]))
    assert rec.cost == pytest.approx(3.0)  # all three records paid for
    # Pool drained early: 2 fused groups + singles < 5 iterations possible.
    assert learner.model.noise_alpha_ is not None


def test_fuse_repeats_conflicts_with_noise_floor_schedule():
    X, y, costs = _problem()
    part = random_partition(X.shape[0], rng=0)
    with pytest.raises(ValueError, match="schedule"):
        ActiveLearner(
            X, y, costs, part, VarianceReduction(),
            fuse_repeats=True,
            noise_floor_schedule=lambda i: 1e-2,
        )


def test_fuse_repeats_validates_repeat_noise_variance():
    X, y, costs = _problem()
    part = random_partition(X.shape[0], rng=0)
    for bad in (0.0, -1.0, float("nan")):
        with pytest.raises(ValueError, match="repeat_noise_variance"):
            ActiveLearner(
                X, y, costs, part, VarianceReduction(),
                fuse_repeats=True, repeat_noise_variance=bad,
            )
