"""Tests for retry/quarantine policies and failure accounting."""

import numpy as np
import pytest

from repro.al.resilience import (
    FailureAccounting,
    QuarantinePolicy,
    RetryPolicy,
)
from repro.cluster import JobSpec, SlurmSimulator, wisconsin_cluster
from repro.cluster.faults import FaultConfig, FaultyExecutor
from repro.datasets.generate import ModelExecutor
from repro.gp.gpr import GaussianProcessRegressor


def _record(**faults):
    """Produce one real JobRecord through the simulator, optionally faulty."""
    executor = ModelExecutor()
    if faults:
        executor = FaultyExecutor(executor, FaultConfig(**faults), rng=0)
    sim = SlurmSimulator(
        wisconsin_cluster(), executor, rng=0, time_limit_seconds=3600.0
    )
    return sim.run_batch([JobSpec("poisson1", float(96**3), 32, 2.4)])[0]


# --------------------------------------------------------------- RetryPolicy


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_seconds=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy().backoff(0)


def test_exponential_backoff():
    policy = RetryPolicy(backoff_seconds=30.0, backoff_factor=2.0)
    assert policy.backoff(1) == pytest.approx(30.0)
    assert policy.backoff(2) == pytest.approx(60.0)
    assert policy.backoff(3) == pytest.approx(120.0)


def test_should_retry_respects_attempts_and_reasons():
    policy = RetryPolicy(max_attempts=3, retry_on=("state",))
    assert policy.should_retry("state", 1)
    assert policy.should_retry("state", 2)
    assert not policy.should_retry("state", 3)
    assert not policy.should_retry("verification", 1)
    assert not policy.should_retry("outlier", 1)


def test_none_policy_never_retries():
    policy = RetryPolicy.none()
    assert policy.max_attempts == 1
    assert not policy.should_retry("state", 1)


# ---------------------------------------------------------- QuarantinePolicy


def test_clean_record_accepted():
    decision = QuarantinePolicy().inspect(_record())
    assert decision.ok
    assert decision.reason is None


def test_failed_state_rejected():
    record = _record(crash_rate=1.0)
    assert record.state == "FAILED"
    decision = QuarantinePolicy().inspect(record)
    assert not decision.ok
    assert decision.reason == "state"
    assert "FAILED" in decision.detail


def test_timeout_state_rejected():
    record = _record(hang_rate=1.0)
    assert record.state == "TIMEOUT"
    decision = QuarantinePolicy().inspect(record)
    assert not decision.ok
    assert decision.reason == "state"


def test_verification_failure_rejected():
    record = _record(corrupt_rate=1.0)
    assert record.state == "COMPLETED"
    decision = QuarantinePolicy().inspect(record)
    assert not decision.ok
    assert decision.reason == "verification"
    relaxed = QuarantinePolicy(require_verification=False).inspect(record)
    assert relaxed.ok


def test_z_score_outlier_rejected():
    record = _record(corrupt_rate=1.0, corrupt_runtime_factor=0.01)
    x = np.array([np.log10(record.problem_size), np.log2(record.np_ranks),
                  record.freq_ghz])
    # A confident model centred on the *clean* runtime.
    clean = _record()
    model = GaussianProcessRegressor(
        noise_variance=1e-4, noise_variance_bounds="fixed", optimizer=None
    )
    model.fit(np.vstack([x, x + 0.5]),
              np.array([np.log10(clean.runtime_seconds)] * 2))
    policy = QuarantinePolicy(require_verification=False, z_threshold=3.0)
    decision = policy.inspect(record, model=model, x=x)
    assert not decision.ok
    assert decision.reason == "outlier"
    # The clean measurement passes the same gate.
    assert policy.inspect(clean, model=model, x=x).ok


def test_z_test_skipped_without_model():
    record = _record(corrupt_rate=1.0, corrupt_runtime_factor=0.01)
    policy = QuarantinePolicy(require_verification=False, z_threshold=3.0)
    assert policy.inspect(record).ok
    assert policy.inspect(record, model=GaussianProcessRegressor()).ok


def test_permissive_policy_accepts_everything():
    policy = QuarantinePolicy.permissive()
    for record in (_record(crash_rate=1.0), _record(hang_rate=1.0),
                   _record(corrupt_rate=1.0)):
        assert policy.inspect(record).ok


def test_policy_validation():
    with pytest.raises(ValueError):
        QuarantinePolicy(z_threshold=0.0)


# --------------------------------------------------------- FailureAccounting


def test_accounting_add():
    total = FailureAccounting()
    total.add(FailureAccounting(n_failed=2, n_retries=1, wasted_core_seconds=5.0))
    total.add(FailureAccounting(n_quarantined=3, wasted_core_seconds=2.5))
    assert total == FailureAccounting(
        n_failed=2, n_retries=1, n_quarantined=3, wasted_core_seconds=7.5
    )
