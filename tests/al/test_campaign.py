"""Tests for online AL campaigns through the cluster simulator."""

import numpy as np
import pytest

from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.datasets.generate import ModelExecutor


def _candidates():
    sizes = [48**3, 96**3, 192**3, 384**3]
    nps = [1, 8, 32, 128]
    freqs = [1.2, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


def _campaign(batch_size=1, n_rounds=4, rng=0):
    config = CampaignConfig(
        operator="poisson1",
        candidates=_candidates(),
        batch_size=batch_size,
        n_rounds=n_rounds,
    )
    return OnlineCampaign(config, ModelExecutor(), rng=rng)


def test_campaign_runs_and_accumulates():
    result = _campaign(batch_size=2, n_rounds=3).run()
    # 1 seed + 3 rounds x 2 jobs.
    assert result.X.shape == (7, 3)
    assert result.y.shape == (7,)
    assert result.simulated_seconds > 0
    assert result.cpu_core_seconds > 0
    assert len(result.rounds) == 3
    assert all(r["n_jobs"] == 2 for r in result.rounds)
    assert result.model.fitted


def test_campaign_learns_the_surface():
    result = _campaign(batch_size=2, n_rounds=6).run()
    model = result.model
    # Predict a mid-grid configuration and compare with the ground truth.
    from repro.perfmodel import RuntimeModel

    truth = float(np.log10(RuntimeModel().runtime("poisson1", 96**3, 32, 2.4)))
    pred = float(
        model.predict(np.array([[np.log10(96**3), np.log2(32), 2.4]]))[0]
    )
    assert pred == pytest.approx(truth, abs=0.5)


def test_batching_reduces_simulated_wall_clock():
    """Batched rounds finish sooner than running the same jobs one by one.

    Strategies break exact score ties randomly, so two separate campaigns
    need not select the same configurations; the robust comparison is the
    batched makespan against the serial execution of the *identical* job
    set (the sum of its measured runtimes).
    """
    batched = _campaign(batch_size=4, n_rounds=2, rng=1).run()
    assert batched.X.shape[0] == 9
    serial_seconds = float(np.sum(10.0 ** batched.y))  # y is log10 runtime
    assert batched.simulated_seconds < serial_seconds


def test_round_sd_decreases():
    result = _campaign(batch_size=1, n_rounds=8).run()
    sds = [r["max_sd"] for r in result.rounds]
    assert sds[-1] < sds[0]


def test_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(operator="poisson1", candidates=np.zeros((3, 2)))
    with pytest.raises(ValueError):
        CampaignConfig(
            operator="poisson1", candidates=_candidates(), batch_size=0
        )
