"""Tests for the incremental-refit fast path of the AL loop."""

import numpy as np
import pytest

from repro.al import (
    EMCM,
    ActiveLearner,
    CandidatePool,
    VarianceReduction,
    default_model_factory,
    random_partition,
    run_batch,
    select_batch,
)
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


def _problem(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 10, size=n))[:, np.newaxis]
    y = 0.5 * X[:, 0] + np.sin(X[:, 0]) + 0.05 * rng.standard_normal(n)
    costs = np.abs(y) + 1.0
    return X, y, costs


def _learner(seed=0, **kw):
    X, y, costs = _problem(seed=seed)
    part = random_partition(X.shape[0], rng=seed)
    defaults = dict(model_factory=default_model_factory(noise_floor=1e-2))
    defaults.update(kw)
    return ActiveLearner(X, y, costs, part, VarianceReduction(), **defaults)


# ------------------------------------------------------- learner fast path


def test_fast_refits_default_schedule_matches_slow_path():
    """With refit_every=1 the fast path is the paper-faithful slow path."""
    slow = _learner(seed=2).run(8)
    fast = _learner(seed=2, fast_refits=True).run(8)
    np.testing.assert_allclose(slow.series("rmse"), fast.series("rmse"))
    np.testing.assert_allclose(slow.selected_points, fast.selected_points)


def test_fast_refits_schedule_refits_on_multiples():
    learner = _learner(seed=1, fast_refits=True, refit_every=4)
    learner.run(9)
    # Between refits the model object persists and only grows its posterior;
    # it covers all training rows except the one queried this iteration.
    assert learner.model.X_train_.shape[0] == learner.n_train - 1


def test_fast_refits_trains_comparably():
    """The k-schedule loses little accuracy on a smooth response."""
    slow = _learner(seed=4).run(20)
    fast = _learner(seed=4, fast_refits=True, refit_every=5).run(20)
    assert fast.final.rmse < 3 * slow.final.rmse + 1e-3
    assert fast.final.rmse < 0.5 * fast.records[0].rmse


def test_fast_refits_records_stay_valid():
    learner = _learner(seed=3, fast_refits=True, refit_every=3)
    trace = learner.run(7)
    for rec in trace.records:
        assert np.isfinite(rec.lml)
        assert rec.sd_at_selected > 0
        assert rec.noise_variance > 0


def test_refit_every_validation():
    with pytest.raises(ValueError, match="refit_every"):
        _learner(refit_every=0)


def test_warm_start_runs():
    learner = _learner(seed=5, fast_refits=True, refit_every=2, warm_start=True)
    trace = learner.run(6)
    assert len(trace) == 6
    assert trace.final.rmse < trace.records[0].rmse * 2


def test_sd_at_selected_reuses_strategy_scores():
    """The recorded SD equals the strategy's pool SD at the selected record
    (no second, drifting prediction path)."""
    learner = _learner(seed=6)
    rec = learner.step()
    model = learner.model
    # Recompute what the strategy saw: pool SDs before consumption.
    x_sel = rec.x_selected[np.newaxis, :]
    _, sd = model.predict(x_sel, return_std=True)
    assert rec.sd_at_selected == pytest.approx(float(sd[0]), rel=1e-12)
    assert learner.strategy.last_selected_sd == pytest.approx(rec.sd_at_selected)


# ------------------------------------------------------------ run_batch knob


def test_run_batch_fast_refits_matches_slow_path():
    X, y, costs = _problem()
    kwargs = dict(
        strategy_factory=lambda i: VarianceReduction(),
        n_partitions=3,
        n_iterations=10,
        seed=1,
        model_factory=default_model_factory(1e-2),
    )
    slow = run_batch(X, y, costs, **kwargs)
    fast = run_batch(X, y, costs, fast_refits=True, **kwargs)
    np.testing.assert_allclose(
        slow.series_matrix("rmse")[:, -1],
        fast.series_matrix("rmse")[:, -1],
        atol=1e-6,
    )


def test_run_batch_accepts_schedule():
    X, y, costs = _problem()
    result = run_batch(
        X,
        y,
        costs,
        strategy_factory=lambda i: VarianceReduction(),
        n_partitions=2,
        n_iterations=8,
        seed=0,
        model_factory=default_model_factory(1e-2),
        fast_refits=True,
        refit_every=4,
    )
    assert result.series_matrix("rmse").shape == (2, 8)


# --------------------------------------------------------- select_batch fast


@pytest.fixture()
def fitted_model():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 4, size=(12, 1))
    y = np.sin(X[:, 0]) + 0.05 * rng.standard_normal(12)
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    return model.fit(X, y)


def _pool():
    X = np.linspace(0, 10, 21)[:, np.newaxis]
    return CandidatePool(X, np.sin(X[:, 0]), np.linspace(1, 3, 21))


def test_select_batch_fast_matches_slow(fitted_model):
    fast = select_batch(fitted_model, _pool(), VarianceReduction(), 5, fast=True)
    slow = select_batch(fitted_model, _pool(), VarianceReduction(), 5, fast=False)
    assert fast == slow


def test_select_batch_fast_leaves_model_untouched(fitted_model):
    n_before = fitted_model.X_train_.shape[0]
    select_batch(fitted_model, _pool(), VarianceReduction(), 4)
    assert fitted_model.X_train_.shape[0] == n_before


# ----------------------------------------------------------------- EMCM fast


def test_emcm_fast_matches_slow_on_first_call(fitted_model):
    pool = _pool()
    fast_scores = EMCM(n_members=3, seed=0, fast=True).scores(fitted_model, pool)
    slow_scores = EMCM(n_members=3, seed=0, fast=False).scores(fitted_model, pool)
    np.testing.assert_allclose(fast_scores, slow_scores)


def test_emcm_fast_members_persist_and_advance(fitted_model):
    emcm = EMCM(n_members=3, seed=0, fast=True)
    pool = _pool()
    emcm.scores(fitted_model, pool)
    members_before = emcm._members
    n_before = emcm._seen_n
    # Grow the primary model incrementally; members must advance, not rebuild.
    fitted_model.update(np.array([[5.0]]), 0.5)
    emcm.scores(fitted_model, pool)
    assert emcm._members is members_before
    assert emcm._seen_n == n_before + 1


def test_emcm_fast_rebuilds_on_hyperparameter_change(fitted_model):
    emcm = EMCM(n_members=2, seed=0, fast=True)
    pool = _pool()
    emcm.scores(fitted_model, pool)
    members_before = emcm._members
    fitted_model.noise_variance_ *= 2.0  # simulate a hyperparameter refit
    emcm.scores(fitted_model, pool)
    assert emcm._members is not members_before


def test_emcm_fast_in_learner_loop():
    X, y, costs = _problem(seed=9)
    part = random_partition(X.shape[0], rng=9)
    learner = ActiveLearner(
        X, y, costs, part, EMCM(n_members=2, seed=0),
        model_factory=default_model_factory(1e-2),
        fast_refits=True, refit_every=3,
    )
    trace = learner.run(7)
    assert len(trace) == 7
    assert np.all(np.isfinite(trace.series("rmse")))
