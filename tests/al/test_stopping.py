"""Tests for stopping rules and dynamic noise floors."""

import numpy as np
import pytest

from repro.al import AMSDConvergence, dynamic_noise_floor, first_converged_iteration
from repro.al.learner import ALTrace, IterationRecord


def _trace_with_amsd(values):
    records = []
    for i, v in enumerate(values):
        records.append(
            IterationRecord(
                iteration=i, n_train=i + 1, selected_pool_index=i,
                x_selected=np.zeros(1), y_selected=0.0, sd_at_selected=v,
                cost=1.0, cumulative_cost=float(i + 1), rmse=v, amsd=v,
                gmsd=v, nlpd=v, noise_variance=0.1, lml=0.0,
            )
        )
    return ALTrace(strategy="s", records=records)


def test_not_converged_while_decreasing():
    trace = _trace_with_amsd([1.0, 0.8, 0.6, 0.4, 0.3, 0.25])
    assert not AMSDConvergence(window=4, rel_tol=0.05).converged(trace)


def test_converged_when_flat():
    trace = _trace_with_amsd([1.0, 0.5, 0.32, 0.31, 0.312, 0.311, 0.310])
    assert AMSDConvergence(window=4, rel_tol=0.05).converged(trace)


def test_short_trace_not_converged():
    trace = _trace_with_amsd([0.3, 0.3])
    assert not AMSDConvergence(window=5).converged(trace)


def test_first_converged_iteration():
    values = [1.0, 0.7, 0.5, 0.4, 0.4, 0.401, 0.399, 0.4]
    trace = _trace_with_amsd(values)
    rule = AMSDConvergence(window=3, rel_tol=0.05)
    it = first_converged_iteration(trace, rule)
    assert it == 5  # window [0.4, 0.4, 0.401] at indices 3..5
    assert first_converged_iteration(
        _trace_with_amsd([1.0, 0.5, 0.25, 0.12]), rule
    ) is None


def test_all_zero_amsd_converged():
    trace = _trace_with_amsd([0.0, 0.0, 0.0, 0.0, 0.0])
    assert AMSDConvergence(window=3).converged(trace)


def test_rule_validation():
    with pytest.raises(ValueError):
        AMSDConvergence(window=1)
    with pytest.raises(ValueError):
        AMSDConvergence(rel_tol=0.0)


def test_dynamic_noise_floor_schedule():
    """The paper's sigma_n >= 1/sqrt(N) proposal (Section V-B4)."""
    schedule = dynamic_noise_floor(scale=1.0)
    assert schedule(0) == pytest.approx(1.0)
    assert schedule(3) == pytest.approx(0.5)
    assert schedule(99) == pytest.approx(0.1)
    # Monotone non-increasing.
    floors = [schedule(i) for i in range(50)]
    assert all(a >= b for a, b in zip(floors, floors[1:]))


def test_dynamic_noise_floor_minimum():
    schedule = dynamic_noise_floor(scale=1.0, minimum=0.2)
    assert schedule(1000) == pytest.approx(0.2)


def test_dynamic_noise_floor_validation():
    with pytest.raises(ValueError):
        dynamic_noise_floor(scale=0.0)
    with pytest.raises(ValueError):
        dynamic_noise_floor(minimum=-1.0)


def test_dynamic_floor_integrates_with_learner():
    from repro.al import ActiveLearner, VarianceReduction, random_partition

    rng = np.random.default_rng(0)
    X = np.sort(rng.uniform(0, 10, size=40))[:, np.newaxis]
    y = X[:, 0] * 0.3 + 0.05 * rng.standard_normal(40)
    part = random_partition(40, rng=0)
    learner = ActiveLearner(
        X, y, np.ones(40), part, VarianceReduction(),
        noise_floor_schedule=dynamic_noise_floor(scale=0.5),
    )
    trace = learner.run(6)
    floors = [0.5 / np.sqrt(i + 1) for i in range(6)]
    for rec, floor in zip(trace.records, floors):
        assert rec.noise_variance >= floor * 0.999
    # Later iterations may settle on lower noise than early ones allowed.
    assert trace.records[-1].noise_variance <= trace.records[0].noise_variance + 1e-9


def test_shared_predicate_is_single_source_of_truth():
    """Both call sites delegate to amsd_tail_converged, so a live rule and
    the retrospective scan agree on every prefix of every series."""
    from repro.al import amsd_tail_converged

    rng = np.random.default_rng(5)
    rule = AMSDConvergence(window=4, rel_tol=0.08)
    for _ in range(20):
        values = np.abs(rng.standard_normal(12)) * rng.uniform(0.1, 2.0)
        # Occasionally flatten a tail so both outcomes are exercised.
        if rng.uniform() < 0.5:
            k = int(rng.integers(3, 8))
            values[-k:] = values[-k] * (1 + 0.001 * rng.standard_normal(k))
        trace = _trace_with_amsd(values)
        # Online: step the rule forward one iteration at a time.
        online = None
        for end in range(1, len(values) + 1):
            prefix = _trace_with_amsd(values[:end])
            if rule.converged(prefix) and online is None:
                online = end - 1
        assert online == first_converged_iteration(trace, rule)
        # Direct predicate agreement at the full-series end.
        if len(values) >= rule.window:
            assert rule.converged(trace) == amsd_tail_converged(
                np.asarray(values[-rule.window :]), rule.rel_tol
            )


def test_shared_predicate_zero_tail():
    from repro.al import amsd_tail_converged

    assert amsd_tail_converged(np.zeros(4), 0.05)
    assert not amsd_tail_converged(np.array([1.0, 0.5, 0.2, 0.1]), 0.05)


def test_dynamic_floor_works_with_scaled_bounds():
    """The schedule composes with numeric ('scaled') noise bounds: every
    refit installs the scheduled floor and widens the upper bound."""
    from repro.al import ActiveLearner, VarianceReduction, random_partition
    from repro.gp import GaussianProcessRegressor

    rng = np.random.default_rng(1)
    X = np.sort(rng.uniform(0, 10, size=30))[:, np.newaxis]
    y = X[:, 0] * 0.3 + 0.05 * rng.standard_normal(30)
    part = random_partition(30, rng=1)

    def factory():
        return GaussianProcessRegressor(
            noise_variance=0.5, noise_variance_bounds=(1e-6, 1e2),
            n_restarts=0, rng=0,
        )

    learner = ActiveLearner(
        X, y, np.ones(30), part, VarianceReduction(),
        model_factory=factory,
        noise_floor_schedule=dynamic_noise_floor(scale=2.0),
    )
    trace = learner.run(3)
    for i, rec in enumerate(trace.records):
        floor = 2.0 / np.sqrt(i + 1)
        assert rec.noise_variance >= floor * 0.999
    # The learner rewrote the bounds on the fitted model.
    low, high = learner.model.noise_variance_bounds
    assert low == pytest.approx(2.0 / np.sqrt(3))
    assert high >= low * 10


def test_dynamic_floor_raises_cleanly_with_fixed_bounds():
    """'fixed' bounds + a schedule is a contradiction: the learner raises a
    descriptive ValueError instead of silently re-enabling optimization
    (cross-linked in the dynamic_noise_floor docstring)."""
    from repro.al import ActiveLearner, VarianceReduction, random_partition
    from repro.gp import GaussianProcessRegressor

    rng = np.random.default_rng(1)
    X = np.sort(rng.uniform(0, 10, size=20))[:, np.newaxis]
    y = X[:, 0] * 0.3 + 0.05 * rng.standard_normal(20)
    part = random_partition(20, rng=1)
    learner = ActiveLearner(
        X, y, np.ones(20), part, VarianceReduction(),
        model_factory=lambda: GaussianProcessRegressor(
            noise_variance=0.1, noise_variance_bounds="fixed", optimizer=None
        ),
        noise_floor_schedule=dynamic_noise_floor(scale=1.0),
    )
    with pytest.raises(ValueError, match="fixed"):
        learner.step()
