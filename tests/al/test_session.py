"""Tests for AL campaign checkpoint/resume."""

import numpy as np
import pytest

from repro.al import (
    ActiveLearner,
    CostEfficiency,
    VarianceReduction,
    default_model_factory,
    random_partition,
)
from repro.al.session import (
    ALSessionState,
    load_session,
    restore,
    save_session,
    snapshot,
)


def _learner(seed=0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 10, size=50))[:, np.newaxis]
    y = 0.4 * X[:, 0] + 0.05 * rng.standard_normal(50)
    costs = np.abs(y) + 1.0
    part = random_partition(50, rng=seed)
    return ActiveLearner(
        X, y, costs, part, VarianceReduction(),
        model_factory=default_model_factory(1e-2),
    )


def test_snapshot_roundtrip_continues_identically():
    """A resumed campaign must produce exactly the run-through trajectory."""
    straight = _learner()
    straight.run(10)

    resumed = _learner()
    resumed.run(5)
    state = snapshot(resumed)
    resumed2 = restore(
        state, VarianceReduction(), model_factory=default_model_factory(1e-2)
    )
    resumed2.run(5)

    np.testing.assert_allclose(
        straight.trace.series("rmse"), resumed2.trace.series("rmse")
    )
    np.testing.assert_allclose(
        straight.trace.selected_points, resumed2.trace.selected_points
    )
    assert straight.cumulative_cost == pytest.approx(resumed2.cumulative_cost)


def test_save_and_load_file(tmp_path):
    learner = _learner()
    learner.run(4)
    path = save_session(snapshot(learner), tmp_path / "campaign.json")
    state = load_session(path)
    assert isinstance(state, ALSessionState)
    assert state.strategy == "variance-reduction"
    assert len(state.records) == 4
    restored = restore(state, VarianceReduction(),
                       model_factory=default_model_factory(1e-2))
    assert restored.n_train == learner.n_train
    assert restored.pool.n_available == learner.pool.n_available
    assert len(restored.trace) == 4


def test_restore_preserves_consumed_pool_entries():
    learner = _learner()
    learner.run(6)
    consumed_before = set(
        np.flatnonzero(~learner.pool._available).tolist()
    )
    restored = restore(snapshot(learner), VarianceReduction())
    consumed_after = set(np.flatnonzero(~restored.pool._available).tolist())
    assert consumed_before == consumed_after


def test_strategy_mismatch_rejected():
    learner = _learner()
    learner.run(2)
    with pytest.raises(ValueError, match="strategy mismatch"):
        restore(snapshot(learner), CostEfficiency())


def test_bad_version_rejected():
    learner = _learner()
    learner.run(1)
    state = snapshot(learner)
    state.version = 99
    with pytest.raises(ValueError, match="version"):
        restore(state, VarianceReduction())


def test_malformed_file_rejected(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_session(path)


def test_snapshot_before_any_step():
    learner = _learner()
    restored = restore(snapshot(learner), VarianceReduction(),
                       model_factory=default_model_factory(1e-2))
    assert len(restored.trace) == 0
    restored.step()
    assert len(restored.trace) == 1


def test_roundtrip_with_empty_trace_and_empty_test_set(tmp_path):
    """Online campaigns measure everything and hold nothing out; a snapshot
    with no iterations yet and an empty test set must round-trip."""
    learner = _learner()
    state = snapshot(learner)
    state.records = []
    state.X_test = []
    state.y_test = []
    path = save_session(state, tmp_path / "empty.json")
    restored = restore(
        load_session(path), VarianceReduction(),
        model_factory=default_model_factory(1e-2),
    )
    assert len(restored.trace) == 0
    assert restored._X_test.shape == (0, 1)
    assert restored._y_test.shape == (0,)
    assert restored.n_train == learner.n_train
    assert restored.pool.n_available == learner.pool.n_available


def test_save_session_is_atomic(tmp_path, monkeypatch):
    """A crash mid-write must leave the previous complete file intact and
    no temporary droppings behind."""
    import json as json_module

    learner = _learner()
    learner.run(2)
    path = tmp_path / "campaign.json"
    save_session(snapshot(learner), path)
    good = path.read_text()

    def exploding_dumps(payload):
        raise OSError("disk full")

    monkeypatch.setattr(json_module, "dumps", exploding_dumps)
    with pytest.raises(OSError):
        save_session(snapshot(learner), path)
    assert path.read_text() == good  # previous version survives
    leftovers = [p for p in tmp_path.iterdir() if p.name != "campaign.json"]
    assert leftovers == []


def test_truncated_file_reports_corruption(tmp_path):
    learner = _learner()
    learner.run(2)
    path = save_session(snapshot(learner), tmp_path / "campaign.json")
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(ValueError, match="truncated or corrupt"):
        load_session(path)


class TestWriteDurability:
    """write_json_atomic must fsync data before the rename (power-loss
    safety), and best-effort fsync the directory after it."""

    def test_fsyncs_file_before_replace_and_directory_after(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.al.session import write_json_atomic

        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            # Classify: directory fds stat as directories.
            kind = "dir" if os.fstat(fd).st_mode & 0o40000 else "file"
            events.append(("fsync", kind))
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", None))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        path = write_json_atomic({"version": 1, "v": 7}, tmp_path / "doc.json")
        assert path.exists()
        assert events == [
            ("fsync", "file"),
            ("replace", None),
            ("fsync", "dir"),
        ]

    def test_directory_fsync_failure_is_tolerated(self, tmp_path, monkeypatch):
        import os

        from repro.al.session import write_json_atomic

        real_fsync = os.fsync

        def flaky_fsync(fd):
            if os.fstat(fd).st_mode & 0o40000:
                raise OSError("fsync not supported on directories here")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", flaky_fsync)
        path = write_json_atomic({"version": 1}, tmp_path / "doc.json")
        assert path.read_text() == '{"version": 1}'

    def test_file_fsync_failure_keeps_previous_version(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.al.session import write_json_atomic

        target = tmp_path / "doc.json"
        write_json_atomic({"version": 1, "generation": 1}, target)
        good = target.read_text()

        def exploding_fsync(fd):
            raise OSError("I/O error")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            write_json_atomic({"version": 1, "generation": 2}, target)
        assert target.read_text() == good
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]
