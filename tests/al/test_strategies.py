"""Tests for the experiment-selection strategies."""

import numpy as np
import pytest

from repro.al import (
    EMCM,
    CandidatePool,
    CostEfficiency,
    RandomSampling,
    VarianceReduction,
    select_batch,
)
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


@pytest.fixture()
def fitted_model():
    """GP trained on the left half of [0, 10]: uncertainty grows rightward."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 4, size=(12, 1))
    y = np.sin(X[:, 0]) + 0.05 * rng.standard_normal(12)
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    return model.fit(X, y)


@pytest.fixture()
def pool():
    X = np.linspace(0, 10, 21)[:, np.newaxis]
    y = np.sin(X[:, 0])
    costs = np.linspace(1, 3, 21)
    return CandidatePool(X, y, costs)


def test_variance_reduction_picks_most_uncertain(fitted_model, pool):
    idx = VarianceReduction().select(fitted_model, pool)
    _, sd = fitted_model.predict(pool.X, return_std=True)
    assert idx == int(np.argmax(sd))
    # Data lives on [0, 4]; the most uncertain candidate is far right.
    assert pool.X[idx, 0] > 7.0


def test_variance_reduction_revisits_after_consumption(fitted_model, pool):
    strat = VarianceReduction()
    first = strat.select(fitted_model, pool)
    pool.consume(first)
    second = strat.select(fitted_model, pool)
    assert second != first


def test_cost_efficiency_penalizes_predicted_cost(fitted_model, pool):
    """With cost_weight high, CE must pick low-mean (cheap) points."""
    ce = CostEfficiency(cost_weight=50.0)
    idx = ce.select(fitted_model, pool)
    mu = fitted_model.predict(pool.X)
    assert mu[idx] == pytest.approx(mu.min(), abs=1e-9)


def test_cost_efficiency_zero_weight_is_variance_reduction(fitted_model, pool):
    ce = CostEfficiency(cost_weight=0.0)
    vr = VarianceReduction()
    assert ce.select(fitted_model, pool) == vr.select(fitted_model, pool)


def test_cost_efficiency_score_formula(fitted_model, pool):
    ce = CostEfficiency()
    scores = ce.scores(fitted_model, pool)
    mu, sd = fitted_model.predict(pool.available_X(), return_std=True)
    np.testing.assert_allclose(scores, sd - mu)


def test_random_sampling_reproducible(fitted_model, pool):
    a = RandomSampling(seed=5)
    b = RandomSampling(seed=5)
    assert a.select(fitted_model, pool) == b.select(fitted_model, pool)


def test_random_sampling_covers_pool(fitted_model):
    X = np.linspace(0, 10, 10)[:, np.newaxis]
    pool = CandidatePool(X, np.zeros(10), np.ones(10))
    strat = RandomSampling(seed=0)
    picks = set()
    for _ in range(10):
        idx = strat.select(fitted_model, pool)
        picks.add(idx)
        pool.consume(idx)
    assert picks == set(range(10))


def test_emcm_scores_positive_and_shaped(fitted_model, pool):
    emcm = EMCM(n_members=3, seed=0)
    scores = emcm.scores(fitted_model, pool)
    assert scores.shape == (pool.n_available,)
    assert np.all(scores >= 0)
    assert scores.max() > 0


def test_emcm_requires_fitted_model(pool):
    with pytest.raises(ValueError, match="fitted"):
        EMCM().scores(GaussianProcessRegressor(), pool)


def test_emcm_blind_to_extrapolation_region(fitted_model, pool):
    """EMCM's Monte-Carlo disagreement vanishes far from the data.

    With a mean-reverting GP, every bootstrap member predicts the prior
    mean in unexplored regions, so EMCM sees no "model change" there —
    exactly the weakness (noisy, data-bound variance estimates) that makes
    the paper prefer the GPR posterior variance (Section III).
    """
    emcm = EMCM(n_members=8, seed=1)
    scores = emcm.scores(fitted_model, pool)
    x = pool.X[:, 0]
    assert scores[x < 2.0].mean() > 10 * scores[x > 8.0].mean()


def test_exhausted_pool_raises(fitted_model):
    pool = CandidatePool(np.zeros((1, 1)), np.zeros(1), np.ones(1))
    pool.consume(0)
    with pytest.raises(ValueError, match="exhausted"):
        VarianceReduction().select(fitted_model, pool)


def test_select_batch_distinct_and_spread(fitted_model, pool):
    picks = select_batch(fitted_model, pool, VarianceReduction(), 4)
    assert len(picks) == len(set(picks)) == 4
    # Kriging-believer conditioning must spread picks, not cluster them at
    # the single highest-variance spot.
    xs = np.sort(pool.X[picks, 0])
    assert np.min(np.diff(xs)) > 0.4


def test_select_batch_consumes_pool(fitted_model, pool):
    n0 = pool.n_available
    select_batch(fitted_model, pool, VarianceReduction(), 3)
    assert pool.n_available == n0 - 3


def test_select_batch_validation(fitted_model, pool):
    with pytest.raises(ValueError):
        select_batch(fitted_model, pool, VarianceReduction(), 0)
    with pytest.raises(ValueError):
        select_batch(fitted_model, pool, VarianceReduction(), pool.n_available + 1)


def test_cost_model_efficiency_uses_external_cost(fitted_model, pool):
    """With a separate cost model, CE avoids configurations the *cost*
    model flags as expensive even when the response model is flat."""
    from repro.al import CostModelEfficiency

    # Cost grows steeply to the right of the domain.
    cost_gp = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(2.0, "fixed"),
        noise_variance=1e-4, noise_variance_bounds="fixed", optimizer=None,
    ).fit(pool.X, 0.5 * pool.X[:, 0])
    strat = CostModelEfficiency(cost_model=cost_gp, cost_weight=10.0)
    idx = strat.select(fitted_model, pool)
    assert pool.X[idx, 0] < 2.0  # pushed to the cheap side

    # With zero weight it reduces to variance reduction.
    neutral = CostModelEfficiency(cost_model=cost_gp, cost_weight=0.0)
    assert neutral.select(fitted_model, pool) == VarianceReduction().select(
        fitted_model, pool
    )


def test_cost_model_efficiency_requires_fitted_cost_model(fitted_model, pool):
    from repro.al import CostModelEfficiency

    with pytest.raises(ValueError, match="cost_model"):
        CostModelEfficiency().scores(fitted_model, pool)
    with pytest.raises(ValueError, match="cost_model"):
        CostModelEfficiency(cost_model=GaussianProcessRegressor()).scores(
            fitted_model, pool
        )


def test_tied_scores_break_randomly_not_by_pool_order():
    """With a constant prior every score ties; selection must not
    deterministically favour record 0 (dataset order)."""
    X = np.linspace(0, 10, 15)[:, np.newaxis]
    prior = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    )  # unfitted: constant prior SD at every candidate
    picks = {
        VarianceReduction(seed=s).select(
            prior, CandidatePool(X, np.zeros(15), np.ones(15))
        )
        for s in range(12)
    }
    assert len(picks) > 1  # different seeds explore different tied records
    assert picks != {0}


def test_tied_scores_reproducible_per_seed():
    X = np.linspace(0, 10, 15)[:, np.newaxis]
    prior = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    a = VarianceReduction(seed=7).select(
        prior, CandidatePool(X, np.zeros(15), np.ones(15))
    )
    b = VarianceReduction(seed=7).select(
        prior, CandidatePool(X, np.zeros(15), np.ones(15))
    )
    assert a == b


def test_untied_scores_still_pick_the_argmax(fitted_model, pool):
    """Tie-breaking must not disturb selections with a unique maximum."""
    _, sd = fitted_model.predict(pool.X, return_std=True)
    assert VarianceReduction().select(fitted_model, pool) == int(np.argmax(sd))


def test_select_exposes_sd_at_selected(fitted_model, pool):
    strat = VarianceReduction()
    idx = strat.select(fitted_model, pool)
    _, sd = fitted_model.predict(pool.X[idx][np.newaxis, :], return_std=True)
    assert strat.last_selected_sd == pytest.approx(float(sd[0]))
    # Strategies that never compute SDs expose None.
    rnd = RandomSampling(seed=0)
    rnd.select(fitted_model, pool)
    assert rnd.last_selected_sd is None


def test_strategy_names():
    from repro.al import CostModelEfficiency

    assert VarianceReduction().name == "variance-reduction"
    assert CostEfficiency().name == "cost-efficiency"
    assert CostModelEfficiency().name == "cost-model-efficiency"
    assert RandomSampling().name == "random"
    assert EMCM().name == "emcm"


def test_cost_model_efficiency_auto_refit_tracks_observed_costs(fitted_model, pool):
    """Regression: the cost model was fitted once by the caller and never
    refreshed, so its predictions went stale as real costs streamed in.
    refit_cost_model must replace the stale posterior with one trained on
    the observed costs."""
    from repro.al import CostModelEfficiency

    strat = CostModelEfficiency()
    assert strat.auto_refit
    assert strat.cost_model is None
    # Costs observed so far: steeply increasing with x.
    X_seen = np.linspace(0, 10, 9)[:, np.newaxis]
    strat.refit_cost_model(X_seen, 10.0 ** X_seen[:, 0])
    assert strat.cost_model is not None and strat.cost_model.fitted
    mu = strat.cost_model.predict(np.array([[2.0], [8.0]]))
    assert mu[1] > mu[0] + 3  # log10 costs: ~2 vs ~8
    # A later refit on different costs really replaces the fit.
    strat.refit_cost_model(X_seen, np.full(9, 100.0))
    mu2 = strat.cost_model.predict(np.array([[2.0], [8.0]]))
    np.testing.assert_allclose(mu2, 2.0, atol=0.2)


def test_cost_model_efficiency_refit_floors_zero_costs(fitted_model):
    from repro.al import CostModelEfficiency

    strat = CostModelEfficiency()
    X_seen = np.array([[0.0], [1.0]])
    strat.refit_cost_model(X_seen, np.array([0.0, 1.0]))  # no -inf blowup
    assert np.all(np.isfinite(strat.cost_model.predict(X_seen)))


def test_cost_model_efficiency_auto_refit_false_keeps_caller_ownership(
    fitted_model, pool
):
    from repro.al import CostModelEfficiency

    strat = CostModelEfficiency(auto_refit=False)
    with pytest.raises(ValueError) as err:
        strat.scores(fitted_model, pool)
    assert "refit_cost_model" not in str(err.value)  # hint only when auto
