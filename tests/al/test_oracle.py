"""Tests for the offline and online experiment oracles."""

import numpy as np
import pytest

from repro.al import Observation, OfflineOracle, OnlineHPGMGOracle


def test_offline_oracle_replays_records():
    X = np.arange(6, dtype=float)[:, np.newaxis]
    y = X[:, 0] ** 2
    costs = np.ones(6)
    oracle = OfflineOracle(X, y, costs)
    obs = oracle.query(3)
    assert isinstance(obs, Observation)
    np.testing.assert_allclose(obs.x, [3.0])
    assert obs.y == 9.0
    assert obs.cost == 1.0


def test_offline_oracle_validation():
    with pytest.raises(ValueError):
        OfflineOracle(np.zeros((3, 1)), np.zeros(2), np.zeros(3))
    with pytest.raises(ValueError):
        OfflineOracle(np.zeros((3, 1)), np.zeros(3), np.zeros(2))


@pytest.fixture(scope="module")
def online():
    return OnlineHPGMGOracle("poisson1", ne_choices=(4, 8), rng=0)


def test_online_candidate_grid(online):
    grid = online.candidate_grid()
    assert grid.shape == (2 * 5, 2)
    # First column: log10 interior DOFs for ne in {4, 8}.
    assert 10 ** grid[0, 0] == pytest.approx(9)  # (4-1)^2
    assert set(np.round(grid[:, 1], 1)) == {1.2, 1.5, 1.8, 2.1, 2.4}


def test_online_query_runs_real_solve(online):
    x = online.candidate_grid()[0]
    obs = online.query(x)
    # The oracle snaps to the nearest feasible config and reports it back.
    assert obs.x[1] in online.freq_choices
    assert 10 ** obs.x[0] in (9, 49)
    assert np.isfinite(obs.y)
    assert obs.cost > 0
    # Response is log10 runtime of the (noise-scaled) solve.
    assert obs.y == pytest.approx(np.log10(obs.cost))


def test_online_dvfs_slowdown(online):
    """Lower frequency yields systematically longer simulated runtimes.

    The oracle times *real* solves, whose microsecond-scale wall clock is
    noisy under load, so compare paired lo/hi queries and require only the
    median ratio to reflect the (2.4/1.2)^0.75 ~ 1.68x DVFS slowdown.
    """
    grid = online.candidate_grid()
    x_lo = np.array([grid[0, 0], 1.2])
    x_hi = np.array([grid[0, 0], 2.4])
    ratios = [
        online.query(x_lo).cost / online.query(x_hi).cost for _ in range(15)
    ]
    assert np.median(ratios) > 1.1


def test_online_snaps_to_nearest(online):
    obs = online.query(np.array([1.0, 1.33]))
    assert obs.x[1] == 1.2  # nearest DVFS level
    assert 10 ** obs.x[0] == pytest.approx(9)  # nearest mesh


def test_online_query_validation(online):
    with pytest.raises(ValueError):
        online.query(np.array([1.0]))


def test_online_oracle_validation():
    with pytest.raises(ValueError):
        OnlineHPGMGOracle("poisson1", ne_choices=())
