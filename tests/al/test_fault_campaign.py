"""Acceptance tests: fault-tolerant online campaigns (ISSUE 2).

Covers the tentpole guarantees: a campaign under 20% injected faults
completes without exceptions, no FAILED/TIMEOUT/unverified measurement
enters the GP training set, failure accounting sums to the injected
counts, and a campaign killed mid-run resumes bit-identically.
"""

import numpy as np
import pytest

from repro.al.campaign import (
    CampaignConfig,
    OnlineCampaign,
    load_checkpoint,
)
from repro.al.resilience import QuarantinePolicy, RetryPolicy
from repro.cluster.faults import FaultConfig, FaultyExecutor
from repro.datasets.generate import ModelExecutor
from repro.gp.gpr import GaussianProcessRegressor


def _candidates():
    sizes = [48**3, 96**3, 192**3, 384**3]
    nps = [1, 8, 32, 128]
    freqs = [1.2, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


# On this grid the longest clean job is ~250 s and a 3x straggler ~750 s,
# both far below the 3600 s limit, so every hang (7200 s) times out and
# nothing else does: crash -> FAILED, hang -> TIMEOUT, corrupt ->
# COMPLETED + failed verification, straggler -> clean COMPLETED.
TWENTY_PCT = FaultConfig(crash_rate=0.10, hang_rate=0.05, corrupt_rate=0.05)


def _config(batch_size=2, n_rounds=6):
    return CampaignConfig(
        operator="poisson1",
        candidates=_candidates(),
        batch_size=batch_size,
        n_rounds=n_rounds,
    )


class _LoggingFaultyExecutor(FaultyExecutor):
    """FaultyExecutor that remembers every faulty log10 runtime it emitted."""

    def __init__(self, *args, time_limit_seconds=3600.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.faulty_log_runtimes = []
        self._limit = time_limit_seconds

    def execute(self, spec, rng):
        out = super().execute(spec, rng)
        if out.failed or not out.verification_passed:
            # Both the raw runtime and the value the scheduler will record
            # after truncating at the time limit.
            self.faulty_log_runtimes.append(np.log10(out.runtime_seconds))
            self.faulty_log_runtimes.append(
                np.log10(min(out.runtime_seconds, self._limit))
            )
        return out


def test_campaign_survives_twenty_percent_faults():
    executor = FaultyExecutor(ModelExecutor(), TWENTY_PCT)
    campaign = OnlineCampaign(_config(), executor, rng=1)
    result = campaign.run()

    assert result.model.fitted
    assert result.y.shape[0] >= 1
    # Accounting sums to the injected counts, at the event level: every
    # crash/hang execution ends FAILED/TIMEOUT, every corruption completes
    # but is gated out by verification.
    stats = executor.stats
    assert stats.n_faults > 0  # the 20% rate actually bit at this seed
    assert result.n_failed == stats.n_crashes + stats.n_hangs
    assert result.n_quarantined == stats.n_corrupted
    assert stats.n_stragglers >= 0  # stragglers are slow but usable
    # Only quarantined executions waste compute.
    if result.n_failed + result.n_quarantined:
        assert result.wasted_core_seconds > 0
    # Accepted observations per round plus the seed equals the total.
    n_ok = sum(r["n_ok"] for r in result.rounds)
    n_seed = result.y.shape[0] - n_ok
    assert n_seed in (0, 1)


def test_no_faulty_measurement_enters_training_set():
    executor = _LoggingFaultyExecutor(ModelExecutor(), TWENTY_PCT)
    campaign = OnlineCampaign(_config(), executor, rng=1)
    result = campaign.run()

    assert executor.faulty_log_runtimes  # faults were injected at this seed
    for bad in executor.faulty_log_runtimes:
        assert not np.any(np.isclose(result.y, bad, rtol=0, atol=1e-12))


def test_retries_recover_observations():
    """With retries on, rejected experiments are re-run (and the backoff is
    charged to the makespan); with RetryPolicy.none() they are simply lost."""
    resilient = OnlineCampaign(
        _config(), FaultyExecutor(ModelExecutor(), TWENTY_PCT), rng=2
    )
    res = resilient.run()
    naive = OnlineCampaign(
        _config(),
        FaultyExecutor(ModelExecutor(), TWENTY_PCT),
        rng=2,
        retry_policy=RetryPolicy.none(),
    )
    nav = naive.run()
    assert res.n_retries > 0
    assert nav.n_retries == 0
    # Retried experiments land: the resilient campaign keeps more points.
    assert res.y.shape[0] >= nav.y.shape[0]


def test_whole_batch_failure_is_graceful():
    """Every job crashing forever must not raise; the campaign records the
    rounds, keeps the model untouched and returns an unfitted model."""
    executor = FaultyExecutor(ModelExecutor(), FaultConfig(crash_rate=1.0))
    campaign = OnlineCampaign(_config(n_rounds=3), executor, rng=0)
    with pytest.warns(RuntimeWarning, match="no usable observations"):
        result = campaign.run()
    assert result.y.shape == (0,)
    assert result.X.shape == (0, 3)
    assert not result.model.fitted
    assert len(result.rounds) == 3
    assert all(r["n_ok"] == 0 for r in result.rounds)
    assert result.n_failed > 0
    assert result.simulated_seconds > 0  # failures still cost wall-clock
    assert result.wasted_core_seconds == pytest.approx(result.cpu_core_seconds)


class _FailAfterFirst:
    """Executor whose first execution succeeds, all later ones crash."""

    def __init__(self):
        self.inner = ModelExecutor()
        self.n_calls = 0

    def estimate(self, spec):
        return self.inner.estimate(spec)

    def execute(self, spec, rng):
        self.n_calls += 1
        out = self.inner.execute(spec, rng)
        if self.n_calls > 1:
            import dataclasses

            out = dataclasses.replace(
                out, failed=True, verification_passed=False
            )
        return out


def test_batch_failure_after_seed_leaves_model_untouched():
    campaign = OnlineCampaign(_config(n_rounds=3), _FailAfterFirst(), rng=0)
    result = campaign.run()
    # Only the seed observation survives; every AL round comes back empty
    # but the round is still recorded and the model stays fitted on the seed.
    assert result.y.shape == (1,)
    assert result.model.fitted
    assert result.model.X_train_.shape == (1, 3)
    assert len(result.rounds) == 3
    assert all(r["n_ok"] == 0 for r in result.rounds)


class _Killed(RuntimeError):
    pass


class _KillSwitch:
    """Executor wrapper that raises after a fixed number of executions."""

    def __init__(self, inner, kill_after):
        self.inner = inner
        self.kill_after = kill_after
        self.n_calls = 0

    def estimate(self, spec):
        return self.inner.estimate(spec)

    def execute(self, spec, rng):
        self.n_calls += 1
        if self.n_calls > self.kill_after:
            raise _Killed(f"killed after {self.kill_after} executions")
        return self.inner.execute(spec, rng)


@pytest.mark.parametrize("fast_refits", [False, True])
def test_kill_and_resume_is_bit_identical(tmp_path, fast_refits):
    config = _config(batch_size=2, n_rounds=5)
    path = tmp_path / "campaign.json"

    def campaign(executor):
        return OnlineCampaign(
            config, executor, rng=7, fast_refits=fast_refits, refit_every=2
        )

    # Reference: uninterrupted run.  Scheduler-stream fault mode (rng=None)
    # makes the fault pattern a pure function of the campaign seed.
    reference = campaign(FaultyExecutor(ModelExecutor(), TWENTY_PCT)).run(
        checkpoint_path=tmp_path / "ref.json"
    )

    # Same campaign, killed partway through.
    killer = _KillSwitch(FaultyExecutor(ModelExecutor(), TWENTY_PCT), 6)
    with pytest.raises(_Killed):
        campaign(killer).run(checkpoint_path=path)
    killed_at = load_checkpoint(path).next_round
    assert killed_at < config.n_rounds  # it died mid-campaign

    # Fresh process: new campaign object, resume from the checkpoint.
    resumed = campaign(FaultyExecutor(ModelExecutor(), TWENTY_PCT)).resume(path)

    np.testing.assert_array_equal(resumed.X, reference.X)
    np.testing.assert_array_equal(resumed.y, reference.y)
    assert resumed.simulated_seconds == reference.simulated_seconds
    assert resumed.cpu_core_seconds == reference.cpu_core_seconds
    assert resumed.rounds == reference.rounds
    assert resumed.n_failed == reference.n_failed
    assert resumed.n_retries == reference.n_retries
    assert resumed.n_quarantined == reference.n_quarantined
    assert resumed.wasted_core_seconds == reference.wasted_core_seconds
    grid = np.column_stack(
        [
            np.log10(config.candidates[:, 0]),
            np.log2(config.candidates[:, 1]),
            config.candidates[:, 2],
        ]
    )
    mu_a, sd_a = reference.model.predict(grid, return_std=True)
    mu_b, sd_b = resumed.model.predict(grid, return_std=True)
    np.testing.assert_array_equal(mu_a, mu_b)
    np.testing.assert_array_equal(sd_a, sd_b)


def test_resume_rejects_mismatched_config(tmp_path):
    path = tmp_path / "campaign.json"
    OnlineCampaign(_config(n_rounds=2), ModelExecutor(), rng=0).run(
        checkpoint_path=path
    )
    other = CampaignConfig(
        operator="poisson1",
        candidates=_candidates(),
        batch_size=3,
        n_rounds=2,
    )
    with pytest.raises(ValueError, match="batch_size"):
        OnlineCampaign(other, ModelExecutor(), rng=0).resume(path)


def test_missing_scheduler_record_is_descriptive(monkeypatch):
    """A scheduler dropping a job must fail loudly, naming the lost slot."""
    from repro.cluster.scheduler import SlurmSimulator

    class DroppingSimulator(SlurmSimulator):
        def run_batch(self, specs):
            return super().run_batch(specs)[:-1]

    monkeypatch.setattr(
        "repro.al.campaign.SlurmSimulator", DroppingSimulator
    )
    campaign = OnlineCampaign(_config(), ModelExecutor(), rng=0)
    with pytest.raises(RuntimeError, match="repeat_index"):
        campaign.run()


class _FragileGPR(GaussianProcessRegressor):
    """Raises the Cholesky error unless the jitter has been escalated."""

    def fit(self, X, y):
        if self.jitter < 1e-8:
            raise np.linalg.LinAlgError("matrix not positive definite")
        return super().fit(X, y)


def test_jitter_escalation_recovers_cholesky_failure():
    campaign = OnlineCampaign(
        _config(n_rounds=2),
        ModelExecutor(),
        rng=0,
        model_factory=lambda: _FragileGPR(
            noise_variance=1e-2, optimizer=None, jitter=1e-10
        ),
    )
    result = campaign.run()  # must not raise: jitter * 1e3 clears the bar
    assert result.model.fitted
    assert result.model.jitter >= 1e-8


def test_cholesky_failure_keeps_previous_round_model():
    """When even escalated jitter cannot fit, the previous round's model
    survives (a stale posterior beats a dead campaign)."""
    built = []

    class _DoomedGPR(GaussianProcessRegressor):
        def fit(self, X, y):
            if len(built) > 1:  # every model after the first refuses to fit
                raise np.linalg.LinAlgError("matrix not positive definite")
            return super().fit(X, y)

    def factory():
        model = _DoomedGPR(noise_variance=1e-2, optimizer=None)
        built.append(model)
        return model

    campaign = OnlineCampaign(
        _config(n_rounds=3), ModelExecutor(), rng=0, model_factory=factory
    )
    with pytest.warns(RuntimeWarning, match="previous round's model"):
        result = campaign.run()
    assert result.model is built[0]
    assert result.model.fitted
    # The campaign still ran all its rounds on the surviving model.
    assert len(result.rounds) == 3
    assert result.y.shape[0] == 1 + 3 * 2  # seed + three rounds of two jobs


def test_z_threshold_gates_corrupted_measurements():
    """With verification gating off, an aggressive z-threshold still keeps
    grossly corrupted runtimes (a million times too fast) out of the
    training set.  The aggressive threshold also rejects some legitimate
    early-campaign points whose predictions are still poor — the false-
    positive cost that makes the z-gate opt-in (``z_threshold=None``)."""
    config = _config(batch_size=2, n_rounds=6)
    corrupt = FaultConfig(corrupt_rate=0.25, corrupt_runtime_factor=1e-6)
    policy = QuarantinePolicy(require_verification=False, z_threshold=3.0)
    executor = FaultyExecutor(ModelExecutor(), corrupt)
    campaign = OnlineCampaign(
        config,
        executor,
        rng=2,
        quarantine_policy=policy,
        retry_policy=RetryPolicy.none(),
    )
    result = campaign.run()
    assert executor.stats.n_corrupted > 0
    assert result.n_quarantined > 0
    # Every training target is consistent with the clean runtime surface:
    # the six-decade corruptions were all z-gated.
    from repro.perfmodel import RuntimeModel

    truth = RuntimeModel()
    clean = np.array(
        [
            np.log10(truth.runtime("poisson1", 10.0 ** x[0], 2.0 ** x[1], x[2]))
            for x in result.X
        ]
    )
    assert np.all(np.abs(result.y - clean) < 1.0)
