"""Tests for the real-solver scheduler executor (end-to-end online path)."""

import numpy as np
import pytest

from repro.al import HPGMGExecutor
from repro.cluster import (
    IPMISampler,
    JobSpec,
    PowerModel,
    SlurmSimulator,
    wisconsin_cluster,
)


@pytest.fixture(scope="module")
def executor():
    return HPGMGExecutor(ne_choices=(4, 8, 16))


def test_estimate_positive_and_cached(executor):
    spec = JobSpec("poisson1", 15.0**2, 1, 2.4)
    t1 = executor.estimate(spec)
    t2 = executor.estimate(spec)
    assert t1 == t2 > 0


def test_estimate_scales_with_frequency_and_ranks(executor):
    slow = executor.estimate(JobSpec("poisson1", 15.0**2, 1, 1.2))
    fast = executor.estimate(JobSpec("poisson1", 15.0**2, 1, 2.4))
    assert slow > fast
    wide = executor.estimate(JobSpec("poisson1", 15.0**2, 32, 2.4))
    assert wide < fast


def test_execute_runs_real_solver(executor):
    rng = np.random.default_rng(0)
    outcome = executor.execute(JobSpec("poisson2", 15.0**2, 4, 1.8), rng)
    assert outcome.runtime_seconds > 0
    assert outcome.mg_cycles > 0
    assert outcome.final_residual < 1e-7
    assert outcome.verification_passed


def test_full_campaign_through_scheduler(executor):
    """The documented end-to-end path: SLURM sim + real multigrid solves."""
    sim = SlurmSimulator(
        wisconsin_cluster(),
        executor,
        power_model=PowerModel(),
        sampler=IPMISampler(gap_rate_per_minute=0.0),
        rng=1,
    )
    specs = [
        JobSpec(op, float(size), ranks, freq, repeat_index=i)
        for i, (op, size, ranks, freq) in enumerate(
            [
                ("poisson1", 9.0**2, 1, 2.4),
                ("poisson1", 15.0**2, 32, 1.2),
                ("poisson2", 15.0**2, 64, 1.8),
                ("poisson2affine", 9.0**2, 128, 2.4),
            ]
        )
    ]
    records = sim.run_batch(specs)
    assert len(records) == 4
    for r in records:
        assert r.state == "COMPLETED"
        assert r.mg_cycles > 0
        assert r.verification_passed
        assert r.energy_joules is not None


def test_validation():
    with pytest.raises(ValueError):
        HPGMGExecutor(ne_choices=())
    with pytest.raises(ValueError):
        HPGMGExecutor(parallel_efficiency=0.0)
