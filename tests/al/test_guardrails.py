"""Unit tests for model health checks, rollback, and drift detection."""

import numpy as np
import pytest

from repro.al.guardrails import (
    DriftConfig,
    DriftDetector,
    GuardrailConfig,
    GuardrailTallies,
    HealthConfig,
    LastKnownGood,
    ModelHealth,
    apply_remediation,
)
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


def _fit_model(n=16, seed=0, noise=0.05, **kwargs):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 6, size=n))[:, np.newaxis]
    y = np.sin(X[:, 0]) + noise * rng.standard_normal(n)
    defaults = dict(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=noise**2,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    defaults.update(kwargs)
    return GaussianProcessRegressor(**defaults).fit(X, y), X, y


# ----------------------------------------------------------------- health


def test_config_validation():
    with pytest.raises(ValueError):
        HealthConfig(max_condition_number=1.0)
    with pytest.raises(ValueError):
        HealthConfig(max_outlier_rate=0.0)
    with pytest.raises(ValueError):
        DriftConfig(threshold=0.0)
    with pytest.raises(ValueError):
        GuardrailConfig(drift_action="panic")
    with pytest.raises(ValueError):
        GuardrailConfig(trim_fraction=1.0)


def test_healthy_fit_passes():
    model, _, _ = _fit_model()
    report = ModelHealth().check(model)
    assert report.healthy
    assert report.issues == ()
    assert np.isfinite(report.condition_number)
    assert report.outlier_rate is not None


def test_requires_fitted_model():
    with pytest.raises(RuntimeError):
        ModelHealth().check(GaussianProcessRegressor())


def test_flags_ill_conditioned_kernel():
    # A huge length scale with near-zero noise makes K nearly rank-1.
    model, _, _ = _fit_model(
        kernel=ConstantKernel(1.0, "fixed") * RBF(500.0, "fixed"),
        noise_variance=1e-14,
        jitter=0.0,
    )
    report = ModelHealth(HealthConfig(max_condition_number=1e10)).check(model)
    assert not report.healthy
    assert any("ill-conditioned" in issue for issue in report.issues)


def test_flags_noise_pinned_at_floor():
    # Free noise with a floor right at the optimum's value: optimizing from
    # above collapses onto the bound.
    rng = np.random.default_rng(2)
    X = np.sort(rng.uniform(0, 6, size=20))[:, np.newaxis]
    y = np.sin(X[:, 0])  # noise-free data drives sigma_n to its floor
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=1e-2,
        noise_variance_bounds=(1e-4, 1e2),
        n_restarts=1,
        rng=0,
    ).fit(X, y)
    report = ModelHealth(HealthConfig(noise_floor_pin_is_unhealthy=True)).check(model)
    assert report.noise_at_floor
    assert "noise_variance" in report.pinned
    assert not report.healthy


def test_flags_lml_regression_per_point():
    model, _, _ = _fit_model()
    lml_pp = float(model.lml_) / model.X_train_.shape[0]
    cfg = HealthConfig(max_lml_drop_per_point=0.5)
    ok = ModelHealth(cfg).check(model, prev_lml_per_point=lml_pp + 0.4)
    assert ok.healthy
    bad = ModelHealth(cfg).check(model, prev_lml_per_point=lml_pp + 5.0)
    assert any("LML regressed" in issue for issue in bad.issues)


def test_flags_loocv_outliers():
    rng = np.random.default_rng(5)
    X = np.sort(rng.uniform(0, 6, size=16))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.02 * rng.standard_normal(16)
    y[::2] += rng.choice([-3.0, 3.0], size=len(y[::2]))  # half the set corrupted
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.02**2,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    report = ModelHealth(HealthConfig(max_outlier_rate=0.25)).check(model)
    assert report.outlier_rate > 0.25
    assert any("outlier rate" in issue for issue in report.issues)


def test_loocv_skipped_below_min_points():
    model, _, _ = _fit_model(n=5)
    report = ModelHealth(HealthConfig(min_points_for_loocv=8)).check(model)
    assert report.outlier_rate is None


# --------------------------------------------------------------- rollback


def test_last_known_good_restores_with_new_rows():
    model, X, y = _fit_model(n=12)
    lkg = LastKnownGood()
    assert not lkg.available
    lkg.remember(model)
    assert lkg.available and lkg.n_rows == 12

    rng = np.random.default_rng(9)
    X_new = np.vstack([X, rng.uniform(0, 6, size=(3, 1))])
    y_new = np.append(y, np.sin(X_new[12:, 0]))
    restored = lkg.restore(X_new, y_new)
    assert restored.X_train_.shape[0] == 15
    # Hyperparameters are frozen at the snapshot's values.
    assert restored.noise_variance_ == pytest.approx(model.noise_variance_)
    # The restored posterior equals a direct clone+update of the original.
    direct = model.clone_fitted().update(X_new[12:], y_new[12:])
    mu_r = restored.predict(X[:4])
    mu_d = direct.predict(X[:4])
    np.testing.assert_allclose(mu_r, mu_d, rtol=1e-10)
    # The snapshot itself is untouched and restorable again.
    again = lkg.restore(X_new, y_new)
    np.testing.assert_allclose(again.predict(X[:4]), mu_r, rtol=1e-12)


def test_last_known_good_rejects_shrunk_history():
    model, X, y = _fit_model(n=12)
    lkg = LastKnownGood()
    lkg.remember(model)
    with pytest.raises(ValueError, match="append-only"):
        lkg.restore(X[:6], y[:6])
    lkg.reset()
    with pytest.raises(RuntimeError):
        lkg.restore(X, y)


def test_remediation_escalates_restarts_then_floor():
    cfg = GuardrailConfig(remediation_restarts=2, remediation_floor_factor=10.0)

    def fresh():
        return GaussianProcessRegressor(
            noise_variance=1e-2, noise_variance_bounds=(1e-3, 1e3), n_restarts=2
        )

    m0 = apply_remediation(fresh(), 0, cfg)
    assert m0.n_restarts == 2 and m0.noise_variance_bounds == (1e-3, 1e3)
    m1 = apply_remediation(fresh(), 1, cfg)
    assert m1.n_restarts == 4
    assert m1.noise_variance_bounds == (1e-3, 1e3)  # floor untouched at level 1
    m2 = apply_remediation(fresh(), 2, cfg)
    assert m2.n_restarts == 6
    assert m2.noise_variance_bounds[0] == pytest.approx(1e-2)
    assert m2.noise_variance >= 1e-2
    m3 = apply_remediation(fresh(), 3, cfg)
    assert m3.noise_variance_bounds[0] == pytest.approx(1e-1)


def test_remediation_leaves_fixed_noise_alone():
    cfg = GuardrailConfig()
    model = GaussianProcessRegressor(noise_variance_bounds="fixed", n_restarts=1)
    out = apply_remediation(model, 3, cfg)
    assert out.noise_variance_bounds == "fixed"
    assert out.n_restarts > 1


# ------------------------------------------------------------------ drift


def test_drift_detector_quiet_on_stationary_stream():
    rng = np.random.default_rng(0)
    det = DriftDetector()
    assert not any(det.update(z) for z in rng.standard_normal(500))


def test_drift_detector_fires_on_mean_shift_either_direction():
    rng = np.random.default_rng(1)
    for shift in (+3.0, -3.0):
        det = DriftDetector()
        for z in rng.standard_normal(30):
            assert not det.update(z)
        fired_at = None
        for i in range(30):
            if det.update(shift + rng.standard_normal()):
                fired_at = i
                break
        assert fired_at is not None and fired_at < 15


def test_drift_detector_respects_min_samples():
    det = DriftDetector(DriftConfig(min_samples=10, threshold=0.5, delta=0.0))
    # Huge shifts, but fewer than min_samples values: never alarms.
    assert not any(det.update(50.0 * (-1) ** i) for i in range(9))


def test_drift_detector_reset_and_batch_update():
    det = DriftDetector()
    # A baseline regime followed by a shifted one alarms within the batch.
    assert det.update_many(np.concatenate([np.zeros(20), 5.0 + np.zeros(20)]))
    det.reset()
    assert det.n_seen == 0
    assert det.statistic == 0.0
    assert not det.update_many(np.zeros(20))


def test_drift_detector_ignores_non_finite():
    det = DriftDetector()
    assert not det.update(float("nan"))
    assert det.n_seen == 0


# ------------------------------------------------------------ aggregation


def test_tallies_roundtrip():
    t = GuardrailTallies(n_rollbacks=2, n_drift_events=1, n_breaker_opens=3)
    d = t.as_dict()
    assert d["n_rollbacks"] == 2
    assert GuardrailTallies.from_dict(d) == t
    assert GuardrailTallies.from_dict(None) == GuardrailTallies()
    # Unknown keys from a future checkpoint version are ignored.
    d["n_future_things"] = 7
    assert GuardrailTallies.from_dict(d) == t
