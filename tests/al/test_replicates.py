"""Tests for parallel replicate sweeps: determinism and exactly-once resume."""

import numpy as np
import pytest

from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.al.replicates import ReplicateOutcome, run_replicates
from repro.cluster.faults import FaultConfig, FaultyExecutor
from repro.datasets.generate import ModelExecutor


def _candidates():
    sizes = [48**3, 96**3]
    nps = [1, 8]
    freqs = [1.2, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


class _Killed(RuntimeError):
    pass


class _KillSwitch:
    """Executor wrapper that raises after a fixed number of executions."""

    def __init__(self, inner, kill_after):
        self.inner = inner
        self.kill_after = kill_after
        self.n_calls = 0

    def estimate(self, spec):
        return self.inner.estimate(spec)

    def execute(self, spec, rng):
        self.n_calls += 1
        if self.n_calls > self.kill_after:
            raise _Killed(f"killed after {self.kill_after} executions")
        return self.inner.execute(spec, rng)


class _SweepFactory:
    """Module-level (picklable) ``(index, rng) -> OnlineCampaign`` factory.

    ``kill_index``/``kill_after`` arm a kill switch on one replicate so a
    test can crash a sweep mid-campaign.
    """

    def __init__(self, *, n_rounds=3, batch=2, crash_rate=0.0,
                 kill_index=None, kill_after=None):
        self.n_rounds = n_rounds
        self.batch = batch
        self.crash_rate = crash_rate
        self.kill_index = kill_index
        self.kill_after = kill_after

    def __call__(self, index, rng):
        executor = ModelExecutor()
        if self.crash_rate > 0:
            executor = FaultyExecutor(
                executor, FaultConfig(crash_rate=self.crash_rate)
            )
        if index == self.kill_index:
            executor = _KillSwitch(executor, self.kill_after)
        return OnlineCampaign(
            CampaignConfig(
                operator="poisson1",
                candidates=_candidates(),
                batch_size=self.batch,
                n_rounds=self.n_rounds,
            ),
            executor,
            rng=rng,
        )


def _y_by_index(sweep):
    return {r.index: r.y for r in sweep.replicates}


def test_sweep_bit_identical_across_backends():
    """Serial, thread and process sweeps agree observation-for-observation,
    even with fault injection in the loop."""
    factory = _SweepFactory(crash_rate=0.2)
    serial = run_replicates(factory, 4, seed=9, n_workers=1, backend="serial")
    thread = run_replicates(factory, 4, seed=9, n_workers=2, backend="thread")
    process = run_replicates(factory, 4, seed=9, n_workers=3, backend="process")
    for other in (thread, process):
        assert _y_by_index(other) == _y_by_index(serial)
        np.testing.assert_array_equal(
            other.series("simulated_seconds"), serial.series("simulated_seconds")
        )
        assert other.stop_reasons == serial.stop_reasons


def test_replicates_are_independent():
    """Spawned per-replicate streams: no two replicates share a trajectory."""
    sweep = run_replicates(_SweepFactory(), 3, seed=0)
    ys = [tuple(r.y) for r in sweep.replicates]
    assert len(set(ys)) == len(ys)
    assert [r.index for r in sweep.replicates] == [0, 1, 2]


def test_seed_changes_trajectories():
    a = run_replicates(_SweepFactory(), 2, seed=0)
    b = run_replicates(_SweepFactory(), 2, seed=1)
    assert _y_by_index(a) != _y_by_index(b)


def test_summary_and_outcome_shape():
    sweep = run_replicates(_SweepFactory(), 2, seed=3)
    s = sweep.summary()
    assert s["n_replicates"] == 2
    assert s["stop_reasons"] == {"completed": 2}
    assert s["mean_observations"] > 0
    assert s["n_resumed"] == 0 and s["n_loaded"] == 0
    r = sweep.replicates[0]
    assert isinstance(r, ReplicateOutcome)
    assert r.n_observations == len(r.y)
    payload = r.payload()
    assert payload["version"] == 1
    assert "resumed" not in payload and "loaded" not in payload


def test_killed_sweep_resumes_exactly_once(tmp_path):
    """The acceptance scenario for checkpointed sweeps: kill a replicate
    mid-campaign, re-run the sweep with more workers, and the fleet must
    (a) never re-run completed replicates, (b) resume the half-finished
    one from its round checkpoint, and (c) end bit-identical to a sweep
    that was never interrupted."""
    ckpt = tmp_path / "sweep"
    reference = run_replicates(_SweepFactory(), 4, seed=17)

    # Serial sweep killed inside replicate 2, after its first round is
    # checkpointed (batch=2 => executions 1-2 are round 1, 3-4 round 2).
    killing = _SweepFactory(kill_index=2, kill_after=3)
    with pytest.raises(_Killed):
        run_replicates(
            killing, 4, seed=17, n_workers=1, backend="serial",
            checkpoint_dir=ckpt,
        )
    done = sorted(p.name for p in ckpt.glob("*.result.json"))
    assert done == ["replicate-0000.result.json", "replicate-0001.result.json"]
    assert (ckpt / "replicate-0002.json").exists()  # mid-campaign checkpoint
    mtimes = {
        p.name: p.stat().st_mtime_ns for p in ckpt.glob("*.result.json")
    }

    # Second invocation: clean factory, process backend, wider pool.
    sweep = run_replicates(
        _SweepFactory(), 4, seed=17, n_workers=2, backend="process",
        checkpoint_dir=ckpt,
    )
    flags = {r.index: (r.loaded, r.resumed) for r in sweep.replicates}
    assert flags == {
        0: (True, False),   # loaded from its result file
        1: (True, False),
        2: (False, True),   # resumed from its round checkpoint
        3: (False, False),  # never started before: fresh run
    }
    s = sweep.summary()
    assert s["n_loaded"] == 2 and s["n_resumed"] == 1

    # (a) completed replicates were not re-executed: files untouched.
    for name, old in mtimes.items():
        assert (ckpt / name).stat().st_mtime_ns == old
    # (c) the fleet is bit-identical to the uninterrupted reference.
    assert _y_by_index(sweep) == _y_by_index(reference)
    np.testing.assert_array_equal(
        sweep.series("simulated_seconds"),
        reference.series("simulated_seconds"),
    )

    # Third invocation: everything is loaded, nothing runs again.
    again = run_replicates(
        _SweepFactory(), 4, seed=17, n_workers=2, backend="process",
        checkpoint_dir=ckpt,
    )
    assert all(r.loaded for r in again.replicates)
    assert _y_by_index(again) == _y_by_index(reference)
    for p in ckpt.glob("*.result.json"):
        assert p.stat().st_mtime_ns == p.stat().st_mtime_ns  # still present
    assert len(list(ckpt.glob("*.result.json"))) == 4


def test_unsupported_result_version_rejected(tmp_path):
    from repro.al.session import write_json_atomic

    ckpt = tmp_path / "sweep"
    ckpt.mkdir()
    write_json_atomic(
        {"version": 99, "index": 0}, ckpt / "replicate-0000.result.json"
    )
    with pytest.raises(ValueError, match="version"):
        run_replicates(_SweepFactory(), 1, seed=0, checkpoint_dir=ckpt)


def test_invalid_replicate_count():
    with pytest.raises(ValueError):
        run_replicates(_SweepFactory(), 0)


def test_factory_must_return_campaign():
    with pytest.raises(TypeError, match="OnlineCampaign"):
        run_replicates(lambda i, rng: object(), 1)


class _WorkerKillSwitch:
    """Executor wrapper that SIGKILLs its own process once, marker-gated.

    Unlike :class:`_KillSwitch` (a clean exception) this models the
    OOM-killer: the process worker vanishes mid-replicate with no
    traceback, and only the ParallelMap retry path can recover.
    """

    def __init__(self, inner, marker, kill_after):
        self.inner = inner
        self.marker = marker
        self.kill_after = kill_after
        self.n_calls = 0

    def estimate(self, spec):
        return self.inner.estimate(spec)

    def execute(self, spec, rng):
        import os as _os
        import signal as _signal
        from pathlib import Path as _Path

        self.n_calls += 1
        if self.n_calls > self.kill_after and not _Path(self.marker).exists():
            _Path(self.marker).write_text("killed")
            _os.kill(_os.getpid(), _signal.SIGKILL)
        return self.inner.execute(spec, rng)


class _WorkerKillFactory(_SweepFactory):
    """Sweep factory arming a one-shot SIGKILL on one replicate."""

    def __init__(self, marker, *, kill_index, kill_after, **kwargs):
        super().__init__(**kwargs)
        self.marker = marker
        self.worker_kill_index = kill_index
        self.worker_kill_after = kill_after

    def __call__(self, index, rng):
        campaign = super().__call__(index, rng)
        if index == self.worker_kill_index:
            campaign.executor = _WorkerKillSwitch(
                campaign.executor, self.marker, self.worker_kill_after
            )
        return campaign


def test_worker_kill_mid_sweep_retried_bit_identical(tmp_path):
    """Acceptance: a SIGKILL'd process worker mid-sweep is retried and the
    sweep finishes bit-identical to the fault-free run, resuming the
    victim from its round checkpoint."""
    reference = run_replicates(_SweepFactory(), 3, seed=23)

    ckpt = tmp_path / "sweep"
    factory = _WorkerKillFactory(
        str(tmp_path / "killed"), kill_index=1, kill_after=3
    )
    sweep = run_replicates(
        factory, 3, seed=23, n_workers=2, backend="process",
        checkpoint_dir=ckpt, max_task_retries=3,
    )
    assert (tmp_path / "killed").exists()  # the kill really happened
    assert _y_by_index(sweep) == _y_by_index(reference)
    np.testing.assert_array_equal(
        sweep.series("simulated_seconds"),
        reference.series("simulated_seconds"),
    )
    # The victim came back through the checkpoint resume path (round 1
    # completed before execution 4 triggered the kill in round 2).
    victim = sweep.replicates[1]
    assert victim.resumed or victim.loaded is False
