"""Tests for cost-error tradeoff analysis (Fig. 8b machinery)."""

import numpy as np
import pytest

from repro.al.learner import ALTrace, IterationRecord
from repro.al.runner import BatchResult
from repro.al.tradeoff import (
    TradeoffCurve,
    compare_strategies,
    crossover_cost,
    relative_reduction,
    tradeoff_curve,
)


def _trace(costs, errors, strategy="s"):
    records = []
    cum = 0.0
    for i, (c, e) in enumerate(zip(costs, errors)):
        cum += c
        records.append(
            IterationRecord(
                iteration=i, n_train=i + 1, selected_pool_index=i,
                x_selected=np.zeros(1), y_selected=0.0, sd_at_selected=1.0,
                cost=c, cumulative_cost=cum, rmse=e, amsd=e, gmsd=e, nlpd=e,
                noise_variance=0.1, lml=0.0,
            )
        )
    return ALTrace(strategy=strategy, records=records)


def _curve(costs, errors, strategy="s"):
    return TradeoffCurve(
        strategy=strategy,
        costs=np.asarray(costs, float),
        errors=np.asarray(errors, float),
    )


def test_step_interpolation():
    curve = _curve([1.0, 10.0, 100.0], [1.0, 0.5, 0.1])
    np.testing.assert_allclose(curve.error_at([1.0, 5.0, 10.0, 50.0, 1000.0]),
                               [1.0, 1.0, 0.5, 0.5, 0.1])
    # Below the first grid point, clamp to the first value.
    assert curve.error_at(0.1) == 1.0


def test_tradeoff_curve_from_batch():
    t1 = _trace([1, 1, 1, 1], [1.0, 0.8, 0.6, 0.4])
    t2 = _trace([2, 2, 2, 2], [1.2, 0.9, 0.7, 0.5])
    batch = BatchResult(strategy="s", traces=[t1, t2])
    curve = tradeoff_curve(batch, n_grid=50)
    assert curve.costs.shape == (50,)
    # Monotone non-increasing average error.
    assert np.all(np.diff(curve.errors) <= 1e-12)
    # At cost 4.5, trace1 has err 0.4 (4 experiments done) and trace2 err
    # 0.9 (2 done) -> mean 0.65.
    assert curve.error_at(4.5) == pytest.approx(0.65)


def test_crossover_detection():
    base = _curve([1, 2, 4, 8, 16], [1.0, 0.8, 0.6, 0.4, 0.2], "base")
    # Challenger: worse early, better from cost 4 onward.
    chal = _curve([1, 2, 4, 8, 16], [1.2, 1.0, 0.5, 0.3, 0.15], "chal")
    C = crossover_cost(base, chal)
    assert C is not None
    assert 2.0 < C <= 4.5  # grid discretization may land just past 4


def test_crossover_none_when_never_wins():
    base = _curve([1, 10, 100], [0.5, 0.3, 0.1])
    chal = _curve([1, 10, 100], [0.9, 0.6, 0.3])
    assert crossover_cost(base, chal) is None


def test_crossover_requires_sustained_win():
    """A transient dip must not count as the crossover."""
    base = _curve([1, 2, 4, 8, 16, 32], [1.0, 0.9, 0.8, 0.7, 0.6, 0.5])
    chal = _curve([1, 2, 4, 8, 16, 32], [1.1, 0.85, 0.95, 0.95, 0.55, 0.45])
    C = crossover_cost(base, chal)
    assert C is not None
    assert C > 8.0  # skips the dip at cost 2


def test_crossover_min_cost():
    base = _curve([1, 2, 4, 8], [1.0, 0.8, 0.6, 0.4])
    chal = _curve([1, 2, 4, 8], [0.9, 0.7, 0.5, 0.3])
    assert crossover_cost(base, chal) == pytest.approx(1.0)
    C = crossover_cost(base, chal, min_cost=3.0)
    assert C == pytest.approx(3.0)


def test_relative_reduction():
    base = _curve([1, 10], [1.0, 0.5])
    chal = _curve([1, 10], [0.8, 0.31])
    red = relative_reduction(base, chal, [1.0, 10.0])
    np.testing.assert_allclose(red, [0.2, 0.38])


def test_compare_strategies_summary():
    base = _curve([1, 2, 4, 8, 16, 32], [1.0, 0.9, 0.8, 0.6, 0.4, 0.2], "vr")
    chal = _curve([1, 2, 4, 8, 16, 32], [1.3, 1.1, 0.5, 0.4, 0.3, 0.19], "ce")
    comp = compare_strategies(base, chal)
    assert comp.baseline == "vr"
    assert comp.challenger == "ce"
    assert comp.crossover is not None
    assert comp.max_reduction > 0.2
    assert set(comp.reductions_at_multiples) <= {2.0, 3.0, 5.0, 10.0}
    for red in comp.reductions_at_multiples.values():
        assert -1.0 < red < 1.0


def test_compare_strategies_no_crossover():
    base = _curve([1, 10, 100], [0.5, 0.3, 0.1], "vr")
    chal = _curve([1, 10, 100], [0.9, 0.6, 0.3], "ce")
    comp = compare_strategies(base, chal)
    assert comp.crossover is None
    assert comp.max_reduction < 0  # challenger strictly worse
    assert comp.reductions_at_multiples == {}
