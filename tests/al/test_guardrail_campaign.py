"""Integration tests: guarded online campaigns (guardrails + breaker)."""

import numpy as np
import pytest

from repro.al.campaign import CampaignConfig, OnlineCampaign, load_checkpoint
from repro.al.guardrails import DriftConfig, GuardrailConfig, HealthConfig
from repro.cluster import BreakerConfig, NodeCircuitBreaker
from repro.cluster.faults import FaultConfig, FaultyExecutor
from repro.datasets.generate import ModelExecutor


def _candidates():
    sizes = [48**3, 96**3, 192**3, 384**3]
    nps = [1, 8, 32, 128]
    freqs = [1.2, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


def _config(batch_size=2, n_rounds=6):
    return CampaignConfig(
        operator="poisson1",
        candidates=_candidates(),
        batch_size=batch_size,
        n_rounds=n_rounds,
    )


def test_unguarded_campaign_reports_no_tallies():
    campaign = OnlineCampaign(_config(n_rounds=3), ModelExecutor(), rng=0)
    result = campaign.run()
    assert result.guardrails is None
    assert result.stop_reason == "completed"


def test_guarded_faultfree_campaign_is_quiet():
    """Guardrails on a clean campaign should not fire anything."""
    campaign = OnlineCampaign(
        _config(n_rounds=4), ModelExecutor(), rng=0, guardrails=True
    )
    result = campaign.run()
    assert result.stop_reason == "completed"
    t = result.guardrails
    assert t is not None
    assert t.n_rollbacks == 0
    assert t.n_drift_events == 0
    assert t.n_watchdog_stops == 0
    assert result.model.fitted


def test_drift_fault_triggers_detector_and_trim():
    # A 10x slowdown after job 10 shifts log10 runtimes by 1.0; with a
    # lowered alarm threshold the changepoint test must catch it before
    # the GP absorbs the new regime.
    executor = FaultyExecutor(
        ModelExecutor(),
        FaultConfig(drift_after_jobs=10, drift_factor=10.0),
    )
    campaign = OnlineCampaign(
        _config(batch_size=3, n_rounds=8),
        executor,
        rng=2,
        guardrails=GuardrailConfig(drift=DriftConfig(threshold=6.0)),
    )
    result = campaign.run()
    assert result.stop_reason == "completed"
    assert executor.stats.n_drifted > 0
    t = result.guardrails
    assert t.n_drift_events >= 1
    assert t.n_trimmed_points >= 1
    assert result.model.fitted
    # Mirrored into the flat accounting fields.
    assert result.guardrails.n_drift_events == t.n_drift_events


def test_breaker_opens_on_crashy_node_and_campaign_completes():
    # Single-node jobs only: once the breaker opens the dead node, the
    # scheduler can still route every job to the three healthy nodes.
    sizes = [48**3, 96**3, 192**3, 384**3]
    cand = np.array(
        [(s, p, f) for s in sizes for p in [1, 8, 32] for f in [1.2, 2.4]],
        dtype=float,
    )
    config = CampaignConfig(
        operator="poisson1", candidates=cand, batch_size=3, n_rounds=6
    )
    executor = FaultyExecutor(
        ModelExecutor(), FaultConfig(node_crash_rates={0: 1.0})
    )
    campaign = OnlineCampaign(
        config,
        executor,
        rng=3,
        guardrails=True,
        breaker=BreakerConfig(failure_threshold=2, cooldown_seconds=1e8),
    )
    result = campaign.run()
    assert result.stop_reason == "completed"
    assert result.guardrails.n_breaker_opens >= 1
    assert result.model.fitted
    assert result.y.shape[0] >= 3
    # The breaker object is shared across waves on one campaign clock.
    assert campaign.breaker.n_opened >= 1


def test_breaker_accepts_prebuilt_instance_and_true():
    br = NodeCircuitBreaker(BreakerConfig(), n_nodes=4)
    campaign = OnlineCampaign(_config(n_rounds=2), ModelExecutor(), breaker=br)
    assert campaign.breaker is br
    campaign2 = OnlineCampaign(_config(n_rounds=2), ModelExecutor(), breaker=True)
    assert campaign2.breaker is not None
    assert campaign2.breaker.n_nodes == 4


def test_watchdog_stops_campaign_on_wall_budget():
    guard = GuardrailConfig(max_wall_seconds=1.0)  # trips after the seed job
    campaign = OnlineCampaign(
        _config(n_rounds=8), ModelExecutor(), rng=0, guardrails=guard
    )
    result = campaign.run()
    assert result.stop_reason == "watchdog"
    assert result.guardrails.n_watchdog_stops == 1
    assert len(result.rounds) < 8  # rounds were actually cut short
    assert result.model.fitted  # best-effort final fit on the seed data


def test_watchdog_cost_budget():
    guard = GuardrailConfig(max_cost_core_seconds=1.0)
    campaign = OnlineCampaign(
        _config(n_rounds=8), ModelExecutor(), rng=0, guardrails=guard
    )
    result = campaign.run()
    assert result.stop_reason == "watchdog"


def test_unhealthy_fits_roll_back_with_escalation():
    # An impossible condition-number bound marks every fit unhealthy: the
    # first fit is accepted (nothing to roll back to), later ones roll
    # back until the escalation budget is spent.
    guard = GuardrailConfig(
        health=HealthConfig(max_condition_number=1.0 + 1e-9),
        check_drift=False,
        max_rollbacks=2,
    )
    campaign = OnlineCampaign(
        _config(batch_size=2, n_rounds=6), ModelExecutor(), rng=1,
        guardrails=guard,
    )
    result = campaign.run()
    assert result.stop_reason == "completed"
    t = result.guardrails
    assert t.n_unhealthy_fits >= 3
    assert t.n_rollbacks >= 1
    assert t.n_remediations >= 1  # rolled-back rounds refit remediated
    assert result.model.fitted


def test_guarded_checkpoint_resume_carries_tallies(tmp_path):
    path = tmp_path / "guarded.json"
    guard = GuardrailConfig(
        health=HealthConfig(max_condition_number=1.0 + 1e-9),
        check_drift=False,
        max_rollbacks=2,
    )

    def fresh():
        return OnlineCampaign(
            _config(batch_size=2, n_rounds=6), ModelExecutor(), rng=1,
            guardrails=guard,
        )

    full = fresh().run()

    class Killed(Exception):
        pass

    campaign = fresh()
    orig = campaign._checkpoint
    calls = {"n": 0}

    # Early fits collapse to a near-diagonal kernel (cond == 1), so the
    # impossible condition bound only bites from the n=7 fit onwards —
    # kill after the 5th checkpoint (round 4) to capture non-zero tallies.
    def kill_after_five(state, p):
        orig(state, p)
        calls["n"] += 1
        if calls["n"] == 5:
            raise Killed()

    campaign._checkpoint = kill_after_five
    with pytest.raises(Killed):
        campaign.run(checkpoint_path=path)

    checkpoint = load_checkpoint(path)
    assert checkpoint.guardrail_state is not None
    assert checkpoint.guardrail_state["tallies"]["n_unhealthy_fits"] >= 1

    resumed = fresh().resume(path)
    assert resumed.stop_reason == "completed"
    # The tallies keep accumulating across the kill/resume boundary.
    assert resumed.guardrails.n_unhealthy_fits >= full.guardrails.n_unhealthy_fits - 1
    assert len(resumed.rounds) == len(full.rounds)
    np.testing.assert_allclose(resumed.y[:3], full.y[:3])


def test_pre_guardrail_checkpoints_still_load(tmp_path):
    """Checkpoints written by unguarded campaigns have no guardrail_state."""
    path = tmp_path / "plain.json"
    campaign = OnlineCampaign(_config(n_rounds=2), ModelExecutor(), rng=0)
    campaign.run(checkpoint_path=path)
    checkpoint = load_checkpoint(path)
    assert checkpoint.guardrail_state is None
    resumed = OnlineCampaign(_config(n_rounds=2), ModelExecutor(), rng=0).resume(
        path
    )
    assert resumed.stop_reason == "completed"
