"""Tests for the static experiment designs (Related-Work baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.al.design import (
    fractional_factorial,
    latin_hypercube,
    nearest_pool_indices,
    one_factor_at_a_time,
    static_design_rmse,
    two_level_factorial,
)


@pytest.fixture()
def pool():
    rng = np.random.default_rng(0)
    X = rng.uniform([0, 1], [10, 3], size=(80, 2))
    y = 0.4 * X[:, 0] - X[:, 1] + 0.05 * rng.standard_normal(80)
    return X, y


def test_one_factor_at_a_time(pool):
    X, _ = pool
    design = one_factor_at_a_time(X, levels_per_factor=5)
    # Center + 2 sweeps of 5 minus the duplicated center points.
    assert design.shape[1] == 2
    assert 8 <= design.shape[0] <= 11
    center = design.mean(axis=0)
    # Each point differs from the center in at most one coordinate.
    mid = np.array([5.0, 2.0])
    for p in design:
        assert np.sum(~np.isclose(p, mid, atol=0.35)) <= 1


def test_two_level_factorial_corners(pool):
    X, _ = pool
    design = two_level_factorial(X)
    assert design.shape == (4, 2)
    lo, hi = X.min(axis=0), X.max(axis=0)
    for p in design:
        for dim in range(2):
            assert p[dim] in (lo[dim], hi[dim])


def test_fractional_factorial_halves_runs():
    rng = np.random.default_rng(1)
    X = rng.uniform(0, 1, size=(50, 4))
    full = two_level_factorial(X)
    frac = fractional_factorial(X, p=1)
    assert full.shape[0] == 16
    assert frac.shape[0] == 8
    # Every fractional run is a corner of the full design.
    full_set = {tuple(np.round(r, 9)) for r in full}
    assert all(tuple(np.round(r, 9)) in full_set for r in frac)


def test_fractional_factorial_validation(pool):
    X, _ = pool
    with pytest.raises(ValueError):
        fractional_factorial(X, p=2)  # d=2 -> p must be < 2... p=2 invalid
    frac = fractional_factorial(X, p=1)
    assert frac.shape[0] == 2


def test_latin_hypercube_stratification(pool):
    X, _ = pool
    design = latin_hypercube(X, 10, rng=0)
    assert design.shape == (10, 2)
    lo, hi = X.min(axis=0), X.max(axis=0)
    assert np.all(design >= lo) and np.all(design <= hi)
    # One point per decile along each dimension (the LHS property).
    for dim in range(2):
        bins = np.floor((design[:, dim] - lo[dim]) / (hi[dim] - lo[dim]) * 10)
        bins = np.clip(bins, 0, 9)
        assert len(set(bins.tolist())) == 10


def test_latin_hypercube_validation(pool):
    X, _ = pool
    with pytest.raises(ValueError):
        latin_hypercube(X, 0)


def test_nearest_pool_indices_unique(pool):
    X, _ = pool
    design = two_level_factorial(X)
    idx = nearest_pool_indices(design, X)
    assert len(set(idx.tolist())) == len(idx) == 4
    # Snapped points are close to the requested corners (normalized space).
    lo, hi = X.min(axis=0), X.max(axis=0)
    norm = lambda A: (A - lo) / (hi - lo)
    dists = np.linalg.norm(norm(X[idx]) - norm(design), axis=1)
    assert dists.max() < 0.5


def test_nearest_pool_indices_exhaustion():
    X = np.zeros((2, 1))
    X[1] = 1.0
    design = np.array([[0.0], [0.4], [0.9]])
    idx = nearest_pool_indices(design, X)
    assert len(idx) == 2  # pool exhausted before the third point


def test_static_design_rmse(pool):
    X, y = pool
    X_test, y_test = X[:20], y[:20]
    design = latin_hypercube(X[20:], 15, rng=0)
    rmse, n_used = static_design_rmse(design, X[20:], y[20:], X_test, y_test)
    assert n_used == 15
    assert 0 < rmse < 1.0


@given(n=st.integers(2, 30), seed=st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_property_lhs_in_bounds(n, seed):
    rng = np.random.default_rng(3)
    X = rng.uniform(-5, 5, size=(40, 3))
    design = latin_hypercube(X, n, rng=seed)
    assert design.shape == (n, 3)
    assert np.all(design >= X.min(axis=0) - 1e-12)
    assert np.all(design <= X.max(axis=0) + 1e-12)
