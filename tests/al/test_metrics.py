"""Tests for AL convergence metrics."""

import math

import numpy as np
import pytest

from repro.al import amsd, evaluate_model, gmsd, nlpd, rmse
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 5, size=(15, 1))
    y = X[:, 0] + 0.1 * rng.standard_normal(15)
    m = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    return m.fit(X, y)


def test_rmse_formula(model):
    X_test = np.array([[1.0], [2.0], [3.0]])
    y_test = np.array([1.0, 2.0, 3.0])
    pred = model.predict(X_test)
    expected = math.sqrt(np.mean((pred - y_test) ** 2))
    assert rmse(model, X_test, y_test) == pytest.approx(expected)


def test_rmse_zero_for_perfect_predictions(model):
    X_test = np.array([[1.5]])
    y_test = model.predict(X_test)
    assert rmse(model, X_test, y_test) == pytest.approx(0.0, abs=1e-12)


def test_amsd_is_mean_sd(model):
    X = np.linspace(0, 8, 9)[:, np.newaxis]
    _, sd = model.predict(X, return_std=True)
    assert amsd(model, X) == pytest.approx(float(np.mean(sd)))


def test_gmsd_leq_amsd(model):
    """Geometric mean never exceeds the arithmetic mean."""
    X = np.linspace(0, 8, 9)[:, np.newaxis]
    assert gmsd(model, X) <= amsd(model, X) + 1e-12


def test_nlpd_formula(model):
    X_test = np.array([[2.0]])
    y_test = np.array([2.0])
    mu, sd = model.predict(X_test, return_std=True)
    expected = 0.5 * math.log(2 * math.pi) + math.log(sd[0]) + 0.5 * (
        (y_test[0] - mu[0]) / sd[0]
    ) ** 2
    assert nlpd(model, X_test, y_test) == pytest.approx(expected)


def test_nlpd_penalizes_confident_misses(model):
    """A miss far outside the predictive band must cost more."""
    X_test = np.array([[2.0]])
    good = nlpd(model, X_test, model.predict(X_test))
    bad = nlpd(model, X_test, model.predict(X_test) + 5.0)
    assert bad > good + 1.0


def test_evaluate_model_consistency(model):
    X_active = np.linspace(0, 8, 9)[:, np.newaxis]
    X_test = np.array([[1.0], [4.0]])
    y_test = np.array([1.0, 4.0])
    out = evaluate_model(model, X_active, X_test, y_test)
    assert out["rmse"] == pytest.approx(rmse(model, X_test, y_test))
    assert out["amsd"] == pytest.approx(amsd(model, X_active))
    assert out["gmsd"] == pytest.approx(gmsd(model, X_active))
    assert out["nlpd"] == pytest.approx(nlpd(model, X_test, y_test))


def test_evaluate_model_is_exactly_the_public_functions(model):
    """Regression for the inline-formula drift: evaluate_model must agree
    with the module's public metric functions *bitwise*, including any SD
    flooring, so the definitions cannot diverge again."""
    X_active = np.linspace(0, 8, 9)[:, np.newaxis]
    X_test = np.linspace(0.5, 7.5, 8)[:, np.newaxis]
    y_test = np.linspace(0.5, 7.5, 8)
    out = evaluate_model(model, X_active, X_test, y_test)
    assert out["rmse"] == rmse(model, X_test, y_test)
    assert out["amsd"] == amsd(model, X_active)
    assert out["gmsd"] == gmsd(model, X_active)
    assert out["nlpd"] == nlpd(model, X_test, y_test)


def test_single_sd_floor_shared_by_gmsd_and_nlpd():
    """gmsd and nlpd historically used different SD floors (1e-300 vs
    1e-12); there is exactly one floor now."""
    from repro.al import metrics as metrics_mod

    floor = metrics_mod._SD_FLOOR
    sd = np.array([0.0, floor / 10])
    # Both helpers must clamp with the same constant.
    assert metrics_mod._gmsd_from(sd) == pytest.approx(floor)
    expected_nlpd = 0.5 * math.log(2 * math.pi) + math.log(floor)
    assert metrics_mod._nlpd_from(
        np.zeros(2), sd, np.zeros(2)
    ) == pytest.approx(expected_nlpd)
