"""Tests for AL convergence metrics."""

import math

import numpy as np
import pytest

from repro.al import amsd, evaluate_model, gmsd, nlpd, rmse
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 5, size=(15, 1))
    y = X[:, 0] + 0.1 * rng.standard_normal(15)
    m = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    return m.fit(X, y)


def test_rmse_formula(model):
    X_test = np.array([[1.0], [2.0], [3.0]])
    y_test = np.array([1.0, 2.0, 3.0])
    pred = model.predict(X_test)
    expected = math.sqrt(np.mean((pred - y_test) ** 2))
    assert rmse(model, X_test, y_test) == pytest.approx(expected)


def test_rmse_zero_for_perfect_predictions(model):
    X_test = np.array([[1.5]])
    y_test = model.predict(X_test)
    assert rmse(model, X_test, y_test) == pytest.approx(0.0, abs=1e-12)


def test_amsd_is_mean_sd(model):
    X = np.linspace(0, 8, 9)[:, np.newaxis]
    _, sd = model.predict(X, return_std=True)
    assert amsd(model, X) == pytest.approx(float(np.mean(sd)))


def test_gmsd_leq_amsd(model):
    """Geometric mean never exceeds the arithmetic mean."""
    X = np.linspace(0, 8, 9)[:, np.newaxis]
    assert gmsd(model, X) <= amsd(model, X) + 1e-12


def test_nlpd_formula(model):
    X_test = np.array([[2.0]])
    y_test = np.array([2.0])
    mu, sd = model.predict(X_test, return_std=True)
    expected = 0.5 * math.log(2 * math.pi) + math.log(sd[0]) + 0.5 * (
        (y_test[0] - mu[0]) / sd[0]
    ) ** 2
    assert nlpd(model, X_test, y_test) == pytest.approx(expected)


def test_nlpd_penalizes_confident_misses(model):
    """A miss far outside the predictive band must cost more."""
    X_test = np.array([[2.0]])
    good = nlpd(model, X_test, model.predict(X_test))
    bad = nlpd(model, X_test, model.predict(X_test) + 5.0)
    assert bad > good + 1.0


def test_evaluate_model_consistency(model):
    X_active = np.linspace(0, 8, 9)[:, np.newaxis]
    X_test = np.array([[1.0], [4.0]])
    y_test = np.array([1.0, 4.0])
    out = evaluate_model(model, X_active, X_test, y_test)
    assert out["rmse"] == pytest.approx(rmse(model, X_test, y_test))
    assert out["amsd"] == pytest.approx(amsd(model, X_active))
    assert out["gmsd"] == pytest.approx(gmsd(model, X_active))
    assert out["nlpd"] == pytest.approx(nlpd(model, X_test, y_test))
