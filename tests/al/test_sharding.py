"""Tests for repro.al.sharding — sharded AL with fault isolation.

Covers the tentpole's four layers (InputPartitioner, ShardSupervisor,
AcquisitionRouter via ShardedLearner, ShardedModel) plus the acceptance
criteria: backend/worker bit-identity and the 2-of-8 chaos run.
"""

import numpy as np
import pytest

from repro.al.partition import random_partition
from repro.al.resilience import ShardBreaker, ShardBreakerConfig
from repro.al.sharding import (
    InputPartitioner,
    ShardedLearner,
    ShardedModel,
    ShardingConfig,
    mixed_operator_pool,
)
from repro.al.strategies import CostEfficiency, RandomSampling, VarianceReduction
from repro.cluster.faults import ShardFaultConfig
from repro.gp.gpr import GaussianProcessRegressor
from repro.parallel import ParallelMap


def _small_problem(n=80, *, seed=3, n_initial=12):
    X, y, costs = mixed_operator_pool(n, seed=seed)
    part = random_partition(n, rng=7, n_initial=n_initial, test_fraction=0.25)
    return X, y, costs, part


def _learner(X, y, costs, part, cfg, **kw):
    kw.setdefault("strategy", CostEfficiency())
    return ShardedLearner(X, y, costs, part, config=cfg, **kw)


# ---------------------------------------------------------- InputPartitioner


def test_partitioner_deterministic_under_seed():
    X, _, _, _ = _small_problem()
    a = InputPartitioner(4, seed=9).fit(X)
    b = InputPartitioner(4, seed=9).fit(X)
    np.testing.assert_array_equal(a.centers_, b.centers_)
    np.testing.assert_array_equal(a.assign(X), b.assign(X))
    # A different seed gives a different (but still total) cell cover.
    c = InputPartitioner(4, seed=10).fit(X)
    assert set(np.unique(c.assign(X))) <= set(range(4))


def test_partitioner_every_shard_nonempty():
    X, _, _, _ = _small_problem()
    labels = InputPartitioner(4, seed=0).fit(X).assign(X)
    assert set(np.unique(labels)) == set(range(4))


def test_partitioner_validation():
    with pytest.raises(ValueError):
        InputPartitioner(0)
    part = InputPartitioner(8, seed=0)
    with pytest.raises(ValueError):
        part.fit(np.zeros((3, 2)))  # fewer points than shards
    with pytest.raises(RuntimeError):
        InputPartitioner(2).assign(np.zeros((3, 2)))


def test_nearest_two_margins():
    X, _, _, _ = _small_problem()
    p = InputPartitioner(4, seed=0).fit(X)
    first, second, margin = p.nearest_two(X)
    np.testing.assert_array_equal(first, p.assign(X))
    assert np.all(first != second)
    assert np.all((margin >= 0.0) & (margin <= 1.0))
    # Restricting to one shard: no runner-up, infinite margin.
    f1, s1, m1 = p.nearest_two(X, among=[2])
    assert np.all(f1 == 2) and np.all(s1 == -1) and np.all(np.isinf(m1))
    with pytest.raises(ValueError):
        p.nearest_two(X, among=[])


# ------------------------------------------------------------ ShardingConfig


def test_config_validation():
    ShardingConfig(n_shards=1)  # degenerate but legal: one global shard
    for bad in (
        dict(n_shards=0),
        dict(n_rounds=0),
        dict(batch_size=0),
        dict(boundary_margin=-0.1),
        dict(boundary_margin=1.5),
        dict(criterion="median"),
        dict(max_fit_retries=-1),
        dict(min_fit_points=0),
    ):
        with pytest.raises(ValueError):
            ShardingConfig(**bad)


# -------------------------------------------------------------- ShardBreaker


def test_breaker_opens_after_consecutive_failures():
    cfg = ShardBreakerConfig(open_after=2, cooldown_rounds=2, blacklist_after=3)
    b = ShardBreaker(3, cfg)
    assert b.state(0, 0) == "closed"
    b.record_failure(0, 0)
    assert b.state(0, 1) == "closed"  # one strike is not enough
    b.record_failure(0, 1)
    assert b.state(0, 2) == "open"
    assert not b.serviceable(0, 2)
    assert b.serviceable_shards(2) == [1, 2]
    # After the cooldown the shard gets a half-open probe.
    assert b.state(0, 4) == "half_open"
    b.record_success(0, 4)
    assert b.state(0, 5) == "closed"
    assert b.n_probes == 1


def test_breaker_blacklists_flapping_shard():
    cfg = ShardBreakerConfig(open_after=1, cooldown_rounds=1, blacklist_after=2)
    b = ShardBreaker(2, cfg)
    b.record_failure(0, 0)          # open #1
    assert b.state(0, 1) == "open"
    b.record_failure(0, 2)          # half-open probe fails -> open #2 -> dead
    assert b.state(0, 3) == "dead"
    assert b.dead_shards() == [0]
    assert b.n_blacklisted == 1
    # A dead shard ignores further outcomes.
    b.record_success(0, 4)
    assert b.state(0, 5) == "dead"


def test_breaker_round_trips_through_dict():
    cfg = ShardBreakerConfig(open_after=1, cooldown_rounds=2, blacklist_after=3)
    b = ShardBreaker(4, cfg)
    b.record_failure(1, 0)
    b.record_failure(3, 0)
    b.record_success(3, 3)
    restored = ShardBreaker.from_dict(b.as_dict(), n_shards=4, config=cfg)
    for shard in range(4):
        for r in range(6):
            assert restored.state(shard, r) == b.state(shard, r)
    assert restored.n_opened == b.n_opened
    with pytest.raises(ValueError):
        ShardBreaker.from_dict(b.as_dict(), n_shards=5, config=cfg)


# --------------------------------------------------------- Strategy.with_seed


def test_with_seed_reseeds_without_mutating_original():
    base = RandomSampling(seed=0)
    other = base.with_seed(123)
    assert other is not base
    assert other.seed == 123 and base.seed == 0
    pool_scores_differ = not np.array_equal(
        np.random.default_rng(0).random(4), np.random.default_rng(123).random(4)
    )
    assert pool_scores_differ
    # Deterministic: same derived seed, same strategy behaviour.
    again = base.with_seed(123)
    assert again.seed == 123


# --------------------------------------------------------- fault-free runs


def test_fault_free_sharded_campaign_completes_and_learns():
    X, y, costs, part = _small_problem(90, seed=3)
    cfg = ShardingConfig(n_shards=4, n_rounds=5, batch_size=2, seed=11)
    result = _learner(X, y, costs, part, cfg).run()
    assert result.stop_reason == "completed"
    assert len(result.rounds) == 5
    assert len(result.y) == 10  # 5 rounds x batch 2
    assert result.model is not None and result.model.n_shards >= 1
    rmses = [r["rmse"] for r in result.rounds if r["rmse"] is not None]
    assert rmses and all(np.isfinite(r) for r in rmses)
    # Degraded-mode report present and clean for a fault-free run.
    avail = result.shard_availability
    assert avail["n_shards"] == 4
    assert avail["mean_availability"] == pytest.approx(1.0)
    assert all(v["state"] == "closed" for v in avail["per_shard"].values())
    assert result.guardrails is not None
    assert result.guardrails.n_breaker_opens == 0


def test_sharded_model_predicts_with_blending():
    X, y, costs, part = _small_problem(90, seed=3)
    cfg = ShardingConfig(n_shards=3, n_rounds=3, batch_size=2, seed=5)
    result = _learner(X, y, costs, part, cfg).run()
    model = result.model
    mu, sd = model.predict(X[part.test], return_std=True)
    assert mu.shape == sd.shape == (part.test.size,)
    assert np.all(np.isfinite(mu)) and np.all(sd > 0)
    # Blending only changes rows near cell boundaries, never breaks shape.
    plain = ShardedModel(
        model.partitioner, model.models, boundary_margin=0.15, blend=False
    )
    mu2 = plain.predict(X[part.test])
    assert mu2.shape == mu.shape
    with pytest.raises(ValueError):
        ShardedModel(model.partitioner, {})


def test_single_shard_degenerates_to_global_gp():
    X, y, costs, part = _small_problem(60, seed=2)
    cfg = ShardingConfig(n_shards=1, n_rounds=3, batch_size=1, seed=4)
    result = _learner(X, y, costs, part, cfg).run()
    assert result.stop_reason == "completed"
    assert result.model.n_shards == 1


# --------------------------------------------------- determinism acceptance


def test_bit_identical_across_backends_and_worker_counts():
    """Acceptance: fault-free sharded run is bit-identical everywhere."""
    X, y, costs, part = _small_problem(70, seed=6)
    cfg = ShardingConfig(n_shards=3, n_rounds=3, batch_size=2, seed=11)
    grid = np.ascontiguousarray(X[part.test])

    def run_with(backend, workers):
        pmap = ParallelMap(backend, workers, default_backend="serial")
        result = _learner(X, y, costs, part, cfg, pmap=pmap).run()
        mu, sd = result.model.predict(grid, return_std=True)
        return result.X, result.y, mu, sd

    ref = run_with("serial", 1)
    for backend, workers in (("thread", 3), ("process", 2), ("process", 5)):
        got = run_with(backend, workers)
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(
                a, b, err_msg=f"{backend}/{workers} diverged from serial"
            )


# -------------------------------------------------------- chaos acceptance


def test_chaos_two_of_eight_shards_forced_down():
    """Acceptance: 2 of 8 shards force-crashed -> campaign completes,
    those shards are excluded, availability is reported, and RMSE stays
    within 1.5x of the fault-free sharded baseline."""
    X, y, costs, part = _small_problem(160, seed=5, n_initial=24)
    part = random_partition(160, rng=9, n_initial=24, test_fraction=0.25)
    cfg = ShardingConfig(n_shards=8, n_rounds=8, batch_size=2, seed=13)

    clean = _learner(X, y, costs, part, cfg).run()
    faults = ShardFaultConfig(shard_crash_rates={0: 1.0, 3: 1.0})
    learner = _learner(X, y, costs, part, cfg, fault_config=faults)
    chaos = learner.run()

    assert chaos.stop_reason == "completed"
    avail = chaos.shard_availability
    assert avail["per_shard"][0]["state"] in ("open", "dead")
    assert avail["per_shard"][3]["state"] in ("open", "dead")
    healthy = [s for s in avail["per_shard"] if s not in (0, 3)]
    assert all(avail["per_shard"][s]["state"] == "closed" for s in healthy)
    assert 0.0 < avail["mean_availability"] < 1.0
    # The downed shards never served a model; their regions were answered
    # by neighbors (degraded mode), not silently dropped.
    assert avail["per_shard"][0]["availability"] == 0.0
    assert avail["per_shard"][3]["availability"] == 0.0
    assert avail["per_shard"][0]["failures"] > 0
    assert chaos.guardrails.n_breaker_opens > 0

    def test_rmse(result):
        mu = result.model.predict(X[part.test])
        return float(np.sqrt(np.mean((mu - y[part.test]) ** 2)))

    assert test_rmse(chaos) <= 1.5 * test_rmse(clean)


def test_corrupt_faults_are_detected_by_hash():
    X, y, costs, part = _small_problem(80, seed=4)
    cfg = ShardingConfig(n_shards=4, n_rounds=4, batch_size=2, seed=7)
    faults = ShardFaultConfig(corrupt_rate=0.5)
    result = _learner(X, y, costs, part, cfg, fault_config=faults).run()
    assert result.stop_reason in ("completed", "pool_exhausted")
    corrupt = sum(
        v["corrupt_detected"]
        for v in result.shard_availability["per_shard"].values()
    )
    assert corrupt > 0  # the hash check actually unmasked corruptions


# -------------------------------------------------------- registry bundles


def test_final_models_published_as_bundle(tmp_path):
    from repro.serve.registry import ModelRegistry

    X, y, costs, part = _small_problem(60, seed=2)
    cfg = ShardingConfig(n_shards=2, n_rounds=2, batch_size=1, seed=3)
    result = _learner(X, y, costs, part, cfg, registry=tmp_path).run()
    assert result.stop_reason == "completed"
    reg = ModelRegistry(tmp_path)
    versions = reg.versions()
    shards = {v.extra["shard"] for v in versions}
    bundles = {v.extra["bundle"] for v in versions}
    assert shards == {0, 1} and len(bundles) == 1
    for v in versions:
        assert v.extra["n_shards"] == 2
        assert v.extra["strategy"] == "cost-efficiency"


def test_publish_bundle_validation(tmp_path):
    from repro.serve.registry import ModelRegistry, RegistryError

    reg = ModelRegistry(tmp_path)
    rng = np.random.default_rng(0)
    Xs = rng.random((8, 2))
    m = GaussianProcessRegressor(rng=0).fit(Xs, rng.random(8))
    with pytest.raises(RegistryError):
        reg.publish_bundle([])
    with pytest.raises(RegistryError):
        reg.publish_bundle([m], shard_ids=[0, 1])
    v1 = reg.publish_bundle([m, m], shard_ids=[0, 4])
    v2 = reg.publish_bundle([m], shard_ids=[2])
    assert {v.extra["bundle"] for v in v1} != {v.extra["bundle"] for v in v2}


# ------------------------------------------------------- mixed_operator_pool


def test_mixed_operator_pool_shape_and_determinism():
    X, y, costs = mixed_operator_pool(50, seed=1)
    assert X.shape == (50, 4) and y.shape == costs.shape == (50,)
    assert set(np.unique(X[:, 0])) == {0.0, 1.0}
    assert np.all(costs > 0)
    X2, y2, _ = mixed_operator_pool(50, seed=1)
    np.testing.assert_array_equal(X, X2)
    np.testing.assert_array_equal(y, y2)
    with pytest.raises(ValueError):
        mixed_operator_pool(1, operators=("poisson1", "poisson2"))


def test_run_is_single_use_and_strategy_seeds_differ():
    X, y, costs, part = _small_problem(60, seed=2)
    cfg = ShardingConfig(n_shards=3, n_rounds=2, batch_size=1, seed=3)
    learner = _learner(X, y, costs, part, cfg, strategy=VarianceReduction())
    seeds = {learner._strategy_seed(s) for s in range(3)}
    assert len(seeds) == 3  # disjoint per-shard strategy streams
    learner.run()
    with pytest.raises(RuntimeError):
        learner.run()
