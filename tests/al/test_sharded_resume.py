"""Kill-and-resume tests for sharded campaign checkpoints.

Satellite acceptance: a campaign SIGKILL'd mid-round resumes from its
per-shard checkpoints and produces a bit-identical result per shard —
even when one shard checkpoint file was torn-write corrupted in between.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.al.partition import random_partition
from repro.al.sharding import ShardedLearner, ShardingConfig, mixed_operator_pool
from repro.al.strategies import CostEfficiency
from repro.cluster.faults import FilesystemFaultInjector, ShardFaultConfig

CFG = dict(n_shards=4, n_rounds=6, batch_size=2, seed=11)
FAULTS = dict(crash_rate=0.15, corrupt_rate=0.1)


def _problem():
    X, y, costs = mixed_operator_pool(90, seed=3)
    part = random_partition(90, rng=7, n_initial=12, test_fraction=0.25)
    return X, y, costs, part


def _learner(fault_config=None):
    X, y, costs, part = _problem()
    return ShardedLearner(
        X, y, costs, part,
        config=ShardingConfig(**CFG),
        strategy=CostEfficiency(),
        fault_config=fault_config,
    )


def _fingerprint(result):
    X, _, _, part = _problem()
    grid = np.ascontiguousarray(X[part.test])
    mu, sd = result.model.predict(grid, return_std=True)
    return result.X, result.y, mu, sd


def _assert_identical(a, b):
    for x, y in zip(_fingerprint(a), _fingerprint(b)):
        np.testing.assert_array_equal(x, y)
    assert a.shard_availability == b.shard_availability
    assert a.guardrails.as_dict() == b.guardrails.as_dict()
    assert a.stop_reason == b.stop_reason


def test_resume_after_mid_round_interrupt_is_bit_identical(tmp_path):
    """Interrupt at the most-exposed point (picks consumed, checkpoint not
    yet written) under active fault injection; resume must replay the lost
    round bit-identically."""
    uninterrupted = _learner(ShardFaultConfig(**FAULTS)).run()

    victim = _learner(ShardFaultConfig(**FAULTS))

    def bomb(round_index):
        if round_index == 3:
            raise KeyboardInterrupt("simulated operator kill")

    victim._mid_round_hook = bomb
    with pytest.raises(KeyboardInterrupt):
        victim.run(checkpoint_dir=tmp_path)
    manifest = (tmp_path / "manifest.json").read_text()
    assert '"next_round": 3' in manifest  # round 3 was lost, 0-2 persisted

    resumed = _learner(ShardFaultConfig(**FAULTS)).resume(tmp_path)
    _assert_identical(uninterrupted, resumed)


def test_resume_heals_torn_shard_checkpoint(tmp_path):
    """One shard file torn-write corrupted between kill and resume: it is
    quarantined to a .corrupt sidecar, rebuilt from the manifest, and the
    campaign still resumes bit-identically."""
    uninterrupted = _learner(ShardFaultConfig(**FAULTS)).run()

    victim = _learner(ShardFaultConfig(**FAULTS))

    def bomb(round_index):
        if round_index == 3:
            raise KeyboardInterrupt()

    victim._mid_round_hook = bomb
    with pytest.raises(KeyboardInterrupt):
        victim.run(checkpoint_dir=tmp_path)

    shard_file = tmp_path / "shard-001.json"
    assert shard_file.exists()
    FilesystemFaultInjector(rng=1).corrupt(shard_file, "torn_write")

    resumed = _learner(ShardFaultConfig(**FAULTS)).resume(tmp_path)
    _assert_identical(uninterrupted, resumed)
    assert (tmp_path / "shard-001.json.corrupt").exists()
    # The healed replacement is valid JSON again.
    import json

    healed = json.loads(shard_file.read_text())
    assert healed["shard"] == 1


def test_resume_after_real_sigkill(tmp_path):
    """Acceptance: SIGKILL the whole campaign process mid-round, resume in
    a fresh process, compare against an uninterrupted run."""
    script = textwrap.dedent(
        """
        import os, signal, sys
        from repro.al.partition import random_partition
        from repro.al.sharding import (
            ShardedLearner, ShardingConfig, mixed_operator_pool,
        )
        from repro.al.strategies import CostEfficiency
        from repro.cluster.faults import ShardFaultConfig

        X, y, costs = mixed_operator_pool(90, seed=3)
        part = random_partition(90, rng=7, n_initial=12, test_fraction=0.25)
        learner = ShardedLearner(
            X, y, costs, part,
            config=ShardingConfig(
                n_shards=4, n_rounds=6, batch_size=2, seed=11
            ),
            strategy=CostEfficiency(),
            fault_config=ShardFaultConfig(crash_rate=0.15, corrupt_rate=0.1),
        )

        def bomb(round_index):
            if round_index == 3:
                os.kill(os.getpid(), signal.SIGKILL)

        learner._mid_round_hook = bomb
        learner.run(checkpoint_dir=sys.argv[1])
        raise SystemExit("SIGKILL never fired")
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), *sys.path) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path)],
        env=env,
        capture_output=True,
        timeout=600,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
    assert (tmp_path / "manifest.json").exists()

    uninterrupted = _learner(ShardFaultConfig(**FAULTS)).run()
    resumed = _learner(ShardFaultConfig(**FAULTS)).resume(tmp_path)
    _assert_identical(uninterrupted, resumed)


def test_resume_validates_checkpoint_compatibility(tmp_path):
    learner = _learner()

    def bomb(round_index):
        if round_index == 2:
            raise KeyboardInterrupt()

    learner._mid_round_hook = bomb
    with pytest.raises(KeyboardInterrupt):
        learner.run(checkpoint_dir=tmp_path)

    # A learner that already ran cannot resume.
    with pytest.raises(RuntimeError, match="freshly constructed"):
        learner.resume(tmp_path)

    # Config drift is rejected before any work happens.
    X, y, costs, part = _problem()
    drifted = ShardedLearner(
        X, y, costs, part,
        config=ShardingConfig(**{**CFG, "n_rounds": 9}),
        strategy=CostEfficiency(),
    )
    with pytest.raises(ValueError, match="n_rounds"):
        drifted.resume(tmp_path)

    # A different dataset is rejected by the hash.
    X2, y2, costs2 = mixed_operator_pool(90, seed=99)
    other = ShardedLearner(
        X2, y2, costs2, part,
        config=ShardingConfig(**CFG),
        strategy=CostEfficiency(),
    )
    with pytest.raises(ValueError, match="hash mismatch"):
        other.resume(tmp_path)

    # A corrupted manifest is a loud, typed failure.
    (tmp_path / "manifest.json").write_text('{"kind": "sharded-campai')
    with pytest.raises(ValueError):
        _learner().resume(tmp_path)


def test_resume_of_finished_checkpoint_replays_final_state(tmp_path):
    """Resuming a checkpoint whose rounds all completed just re-runs the
    deterministic final fit wave and returns the same result."""
    first = _learner().run(checkpoint_dir=tmp_path)
    again = _learner().resume(tmp_path)
    _assert_identical(first, again)
