"""Tests for the candidate pool."""

import numpy as np
import pytest

from repro.al import CandidatePool


def _pool(n=5):
    X = np.arange(n, dtype=float)[:, np.newaxis]
    y = X[:, 0] * 2.0
    costs = np.full(n, 1.5)
    return CandidatePool(X, y, costs)


def test_initial_state():
    pool = _pool(5)
    assert pool.n_total == 5
    assert pool.n_available == 5
    assert not pool.exhausted
    np.testing.assert_array_equal(pool.available_indices(), np.arange(5))


def test_consume_returns_record():
    pool = _pool()
    x, y, cost = pool.consume(2)
    np.testing.assert_allclose(x, [2.0])
    assert y == 4.0
    assert cost == 1.5
    assert pool.n_available == 4
    assert 2 not in pool.available_indices()


def test_double_consume_rejected():
    pool = _pool()
    pool.consume(1)
    with pytest.raises(ValueError, match="already consumed"):
        pool.consume(1)


def test_out_of_range_rejected():
    pool = _pool()
    with pytest.raises(IndexError):
        pool.consume(99)
    with pytest.raises(IndexError):
        pool.consume(-1)


def test_exhaustion():
    pool = _pool(2)
    pool.consume(0)
    pool.consume(1)
    assert pool.exhausted
    assert pool.available_X().shape == (0, 1)


def test_repeated_measurements_stay_available():
    """Duplicate x rows are distinct records (paper: noisy revisits)."""
    X = np.array([[1.0], [1.0], [1.0]])
    y = np.array([2.0, 2.1, 1.9])
    pool = CandidatePool(X, y, np.ones(3))
    pool.consume(0)
    assert pool.n_available == 2
    np.testing.assert_allclose(pool.available_X(), [[1.0], [1.0]])


def test_full_X_includes_consumed():
    pool = _pool()
    pool.consume(0)
    assert pool.X.shape == (5, 1)
    assert pool.available_X().shape == (4, 1)


def test_validation():
    with pytest.raises(ValueError):
        CandidatePool(np.zeros(3), np.zeros(3), np.zeros(3))  # X not 2-D
    with pytest.raises(ValueError):
        CandidatePool(np.zeros((3, 1)), np.zeros(2), np.zeros(3))
    with pytest.raises(ValueError):
        CandidatePool(np.zeros((3, 1)), np.zeros(3), -np.ones(3))


def test_non_finite_costs_rejected():
    # Regression: NaN slipped past the `< 0` check (NaN < 0 is False) and
    # poisoned every cumulative-cost curve downstream.
    X = np.zeros((3, 1))
    y = np.zeros(3)
    for bad in (np.nan, np.inf, -np.inf):
        costs = np.array([1.0, bad, 2.0])
        with pytest.raises(ValueError, match="finite"):
            CandidatePool(X, y, costs)


def test_non_finite_cost_error_names_indices():
    costs = np.array([1.0, np.nan, np.inf])
    with pytest.raises(ValueError, match=r"2 non-finite entries at indices \[1, 2\]"):
        CandidatePool(np.zeros((3, 1)), np.zeros(3), costs)


def test_repeat_indices_finds_all_available_duplicates():
    X = np.array([[1.0], [2.0], [1.0], [3.0], [1.0]])
    y = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
    pool = CandidatePool(X, y, np.ones(5))
    np.testing.assert_array_equal(pool.repeat_indices(0), [0, 2, 4])
    np.testing.assert_array_equal(pool.repeat_indices(2), [0, 2, 4])
    np.testing.assert_array_equal(pool.repeat_indices(1), [1])
    pool.consume(2)
    # Consumed repeats drop out of the group.
    np.testing.assert_array_equal(pool.repeat_indices(0), [0, 4])


def test_consume_repeats_returns_every_record():
    # Regression: consume() took ONE record per selection, so the other
    # repeats of the chosen configuration stayed behind and fusion only
    # ever saw a single observation per step.
    X = np.array([[1.0], [2.0], [1.0], [1.0]])
    y = np.array([0.1, 0.2, 0.3, 0.4])
    costs = np.array([1.0, 2.0, 3.0, 4.0])
    pool = CandidatePool(X, y, costs)
    records = pool.consume_repeats(3)  # any repeat index selects the group
    assert len(records) == 3
    assert [r[1] for r in records] == [0.1, 0.3, 0.4]  # record order
    assert [r[2] for r in records] == [1.0, 3.0, 4.0]
    assert pool.n_available == 1
    with pytest.raises(ValueError):
        pool.consume_repeats(0)  # already consumed


def test_repeat_methods_validate_index():
    pool = _pool(3)
    with pytest.raises(IndexError):
        pool.repeat_indices(7)
    pool.consume(1)
    with pytest.raises(ValueError):
        pool.repeat_indices(1)
