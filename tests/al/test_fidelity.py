"""Multi-fidelity oracles, precision fusion, and the (x, tier) learner."""

import json

import numpy as np
import pytest

from repro.al.fidelity import (
    FidelityTier,
    FusionState,
    MultiFidelityCostEfficiency,
    MultiFidelityLearner,
    MultiFidelityOracle,
    tiers_from_spec,
)

TIERS = (
    FidelityTier("probe", cost_multiplier=0.1, noise_variance=0.0225),
    FidelityTier("full", cost_multiplier=1.0, noise_variance=4e-4),
)


def _ref(x):
    x = np.asarray(x)
    return float(np.sin(3 * x[0]) + 0.5 * x[1])


def _learner(seed=3, n_rounds=8, with_test=True, **kw):
    oracle = MultiFidelityOracle(_ref, TIERS, rng=7)
    rng = np.random.default_rng(0)
    cands = rng.uniform(-1, 1, size=(25, 2))
    test = None
    if with_test:
        tX = np.random.default_rng(1).uniform(-1, 1, size=(30, 2))
        test = (tX, np.array([_ref(x) for x in tX]))
    return MultiFidelityLearner(
        oracle, cands, n_rounds=n_rounds, n_initial=2, seed=seed, test=test, **kw
    )


# ---------------------------------------------------------------------- tiers


def test_tier_validation():
    with pytest.raises(ValueError, match="cost_multiplier"):
        FidelityTier("t", cost_multiplier=0.0, noise_variance=0.1)
    with pytest.raises(ValueError, match="noise_variance"):
        FidelityTier("t", cost_multiplier=1.0, noise_variance=0.0)
    with pytest.raises(ValueError, match="name"):
        FidelityTier("", cost_multiplier=1.0, noise_variance=0.1)


def test_tiers_from_spec_parses_sd_not_variance():
    tiers = tiers_from_spec("probe:0.1:0.15,full:1.0:0.02")
    assert [t.name for t in tiers] == ["probe", "full"]
    assert tiers[0].noise_variance == pytest.approx(0.15**2)
    assert tiers[1].cost_multiplier == 1.0
    with pytest.raises(ValueError, match="spec"):
        tiers_from_spec("probe:0.1")
    with pytest.raises(ValueError, match="duplicate"):
        tiers_from_spec("a:1:0.1,a:2:0.1")


def test_tier_round_trip():
    t = TIERS[0]
    assert FidelityTier.from_dict(t.to_dict()) == t


# --------------------------------------------------------------------- oracle


def test_oracle_query_noise_scales_with_tier():
    oracle = MultiFidelityOracle(_ref, TIERS, rng=0)
    x = np.array([0.2, -0.4])
    truth = _ref(x)
    probe_err = [abs(oracle.query(x, "probe").y - truth) for _ in range(200)]
    full_err = [abs(oracle.query(x, "full").y - truth) for _ in range(200)]
    assert np.mean(probe_err) > 3 * np.mean(full_err)


def test_oracle_cost_and_tier_resolution():
    oracle = MultiFidelityOracle(_ref, TIERS, cost_fn=lambda x: 10.0, rng=0)
    obs = oracle.query([0.0, 0.0], 0)
    assert obs.tier == "probe"
    assert obs.cost == pytest.approx(1.0)  # 10 x 0.1
    assert oracle.query([0.0, 0.0], "full").cost == pytest.approx(10.0)
    assert oracle.reference_tier.name == "full"
    with pytest.raises(KeyError):
        oracle.tier("nope")


def test_oracle_rng_state_round_trips():
    a = MultiFidelityOracle(_ref, TIERS, rng=5)
    state = a.rng_state
    y1 = a.query([0.1, 0.1], "probe").y
    a.rng_state = state
    y2 = a.query([0.1, 0.1], "probe").y
    assert y1 == y2


def test_oracle_accepts_query_style_reference():
    class FakeOracle:
        def query(self, x):
            class Obs:
                pass

            o = Obs()
            o.x, o.y, o.cost = np.asarray(x), _ref(x), 7.0
            return o

    oracle = MultiFidelityOracle(FakeOracle(), TIERS, rng=0)
    obs = oracle.query([0.3, 0.3], "probe")
    assert obs.cost == pytest.approx(0.7)


# --------------------------------------------------------------------- fusion


def test_fusion_matches_closed_form_pooled_estimate():
    fs = FusionState()
    x = [1.0, 2.0]
    ys, s2 = [3.0, 3.2, 2.8, 3.4], 0.04
    for y in ys:
        fs.add(x, y, s2)
    X, y_fused, alpha = fs.fused()
    assert X.shape == (1, 2)
    assert y_fused[0] == pytest.approx(np.mean(ys))
    assert alpha[0] == pytest.approx(s2 / len(ys))
    assert fs.count_at(x) == 4
    assert fs.n_observations == 4


def test_fusion_mixed_variances_weight_by_precision():
    fs = FusionState()
    fs.add([0.0], 0.0, 1.0)  # noisy probe says 0
    fs.add([0.0], 1.0, 0.01)  # accurate run says 1
    _, y, alpha = fs.fused()
    expected = (0.0 / 1.0 + 1.0 / 0.01) / (1 / 1.0 + 1 / 0.01)
    assert y[0] == pytest.approx(expected)
    assert y[0] > 0.98  # dominated by the accurate observation
    assert alpha[0] == pytest.approx(1.0 / (1 / 1.0 + 1 / 0.01))


def test_fusion_preserves_insertion_order_and_round_trips():
    fs = FusionState()
    fs.add([2.0], 1.0, 0.1)
    fs.add([1.0], 2.0, 0.1)
    fs.add([2.0], 1.2, 0.1)
    X, y, alpha = fs.fused()
    np.testing.assert_array_equal(X[:, 0], [2.0, 1.0])
    restored = FusionState.from_dict(fs.to_dict())
    assert restored.to_dict() == fs.to_dict()
    X2, y2, a2 = restored.fused()
    np.testing.assert_array_equal(X, X2)
    np.testing.assert_array_equal(y, y2)
    np.testing.assert_array_equal(alpha, a2)


def test_fusion_rejects_bad_variance_and_empty_state():
    fs = FusionState()
    with pytest.raises(ValueError):
        fs.add([0.0], 1.0, 0.0)
    with pytest.raises(ValueError):
        fs.fused()


# ---------------------------------------------------------------- acquisition


def test_acquisition_prefers_cheap_tier_under_broad_uncertainty():
    """When latent variance dwarfs every tier's noise, the variance gains
    are nearly equal and the cheap probe wins on cost."""
    from repro.gp.gpr import GaussianProcessRegressor
    from repro.gp.kernels import RBF, ConstantKernel

    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, size=(6, 2))
    y = np.array([_ref(x) for x in X])
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(4.0, "fixed") * RBF(0.3, "fixed"),
        noise_variance=1e-4,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    cands = rng.uniform(-1, 1, size=(40, 2))
    acq = MultiFidelityCostEfficiency(seed=0)
    _, tier_idx = acq.select(model, cands, np.ones(40), TIERS)
    assert TIERS[tier_idx].name == "probe"


def test_acquisition_prefers_accurate_tier_near_probe_noise_floor():
    """Once the latent variance is at the probe's own noise level, another
    probe can barely reduce it and the accurate tier wins despite 10x cost."""

    class FlatModel:
        def predict(self, X, return_std=False, include_noise=True):
            mu = np.zeros(len(X))
            sd = np.full(len(X), 0.02)  # well below probe sd 0.15
            return (mu, sd) if return_std else mu

    acq = MultiFidelityCostEfficiency(seed=0)
    scores = acq.scores(FlatModel(), np.zeros((5, 2)), np.ones(5), TIERS)
    assert np.all(scores[:, 1] > scores[:, 0])


def test_acquisition_tie_break_is_seeded():
    class FlatModel:
        def predict(self, X, return_std=False, include_noise=True):
            return np.zeros(len(X)), np.full(len(X), 0.1)

    picks = {
        MultiFidelityCostEfficiency(seed=s).select(
            FlatModel(), np.zeros((12, 2)), np.ones(12), TIERS[:1]
        )[0]
        for s in range(10)
    }
    assert len(picks) > 1  # not pinned to candidate 0
    a = MultiFidelityCostEfficiency(seed=4)
    b = MultiFidelityCostEfficiency(seed=4)
    sel = lambda acq: acq.select(FlatModel(), np.zeros((12, 2)), np.ones(12), TIERS[:1])
    assert [sel(a) for _ in range(5)] == [sel(b) for _ in range(5)]


# -------------------------------------------------------------------- learner


def test_learner_runs_and_satisfies_replicate_protocol():
    res = _learner().run()
    assert res.stop_reason == "completed"
    assert len(res.rounds) == 8
    assert res.n_observations == 10  # 2 initial + 8 rounds
    assert res.simulated_seconds == res.cumulative_cost
    assert res.cpu_core_seconds == res.cumulative_cost
    assert res.n_failed == res.n_retries == res.n_quarantined == 0
    assert res.wasted_core_seconds == 0.0
    assert np.isfinite(res.final_rmse)
    assert sum(res.tier_counts.values()) == 10
    assert res.model is not None and res.model.fitted


def test_learner_fuses_repeats_into_heteroscedastic_rows():
    res = _learner(n_rounds=15).run()
    # Repeats happened (fewer locations than observations) and the final
    # model carries per-point noise.
    assert res.n_locations < res.n_observations or res.model.noise_alpha_ is not None
    assert res.model.noise_alpha_ is not None


def test_learner_validation():
    oracle = MultiFidelityOracle(_ref, TIERS, rng=0)
    cands = np.zeros((4, 2))
    with pytest.raises(ValueError, match="n_initial"):
        MultiFidelityLearner(oracle, cands, n_initial=9)
    with pytest.raises(ValueError, match="base_costs"):
        MultiFidelityLearner(oracle, cands, base_costs=np.ones(3))
    with pytest.raises(ValueError, match="base_costs"):
        MultiFidelityLearner(oracle, cands, base_costs=np.zeros(4))
    with pytest.raises(ValueError, match="candidates"):
        MultiFidelityLearner(oracle, np.zeros((0, 2)))


def test_checkpoint_resume_is_bit_identical(tmp_path):
    full_path = tmp_path / "full.json"
    part_path = tmp_path / "part.json"

    r_full = _learner().run(checkpoint_path=full_path)

    stopped = _learner().run(checkpoint_path=part_path, stop_after_round=3)
    assert stopped.stop_reason == "stopped"
    assert len(stopped.rounds) == 3

    r_res = _learner().resume(part_path)
    assert r_res.stop_reason == "completed"
    assert r_res.resumed

    assert r_full.y == r_res.y
    assert r_full.cumulative_cost == r_res.cumulative_cost
    assert [r.payload() for r in r_full.rounds] == [
        r.payload() for r in r_res.rounds
    ]
    assert r_full.model.to_dict() == r_res.model.to_dict()
    assert full_path.read_bytes() == part_path.read_bytes()


def test_resume_rejects_mismatched_configuration(tmp_path):
    path = tmp_path / "ck.json"
    _learner().run(checkpoint_path=path, stop_after_round=2)
    other = _learner(n_rounds=99)
    with pytest.raises(ValueError, match="n_rounds"):
        other.resume(path)
    bad_seed = _learner(seed=11)
    with pytest.raises(ValueError, match="seed"):
        bad_seed.resume(path)


def test_checkpoint_is_json_and_versioned(tmp_path):
    path = tmp_path / "ck.json"
    _learner().run(checkpoint_path=path, stop_after_round=1)
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert payload["fusion"]["entries"]
    assert payload["tier_counts"]


def test_runs_under_run_replicates(tmp_path):
    from repro.al.replicates import run_replicates

    def factory(index, rng):
        oracle = MultiFidelityOracle(_ref, TIERS, rng=rng)
        cands = np.random.default_rng(0).uniform(-1, 1, size=(20, 2))
        return MultiFidelityLearner(
            oracle, cands, n_rounds=4, n_initial=2, seed=index
        )

    sweep = run_replicates(
        factory, 3, seed=0, checkpoint_dir=tmp_path / "ck", backend="serial"
    )
    assert sweep.n_replicates == 3
    assert all(r.stop_reason == "completed" for r in sweep.replicates)
    assert all(r.n_observations == 6 for r in sweep.replicates)
    # Second sweep loads results instead of re-running.
    again = run_replicates(
        factory, 3, seed=0, checkpoint_dir=tmp_path / "ck", backend="serial"
    )
    assert all(r.loaded for r in again.replicates)
    assert [r.y for r in again.replicates] == [r.y for r in sweep.replicates]


def test_registry_marks_heteroscedastic_models(tmp_path):
    from repro.serve.registry import ModelRegistry

    res = _learner(n_rounds=6).run()
    reg = ModelRegistry(tmp_path / "reg")
    meta = reg.publish(res.model)
    assert meta.extra["heteroscedastic"] is True
    assert meta.extra["n_noise_alpha"] == res.n_locations
    # Scalar models stay unmarked (absence implies scalar).
    from repro.gp.gpr import GaussianProcessRegressor

    X = np.random.default_rng(0).uniform(-1, 1, size=(8, 2))
    scalar = GaussianProcessRegressor(rng=0).fit(
        X, np.array([_ref(x) for x in X])
    )
    meta2 = reg.publish(scalar)
    assert "heteroscedastic" not in meta2.extra
