"""Tests for Initial/Active/Test partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.al import Partition, random_partition, random_partitions


def test_default_split_matches_paper():
    """Initial=1; Active:Test ~ 8:2 of the rest (Section IV)."""
    p = random_partition(251, rng=0)
    assert p.initial.size == 1
    assert p.test.size == 50  # round(250 * 0.2)
    assert p.active.size == 200
    assert p.n_total == 251


def test_partition_disjoint_and_complete():
    p = random_partition(100, rng=1)
    all_idx = np.concatenate([p.initial, p.active, p.test])
    assert sorted(all_idx.tolist()) == list(range(100))


def test_partition_reproducible():
    a = random_partition(50, rng=3)
    b = random_partition(50, rng=3)
    np.testing.assert_array_equal(a.active, b.active)
    c = random_partition(50, rng=4)
    assert not np.array_equal(a.active, c.active)


def test_custom_initial_and_test_fraction():
    p = random_partition(101, rng=0, n_initial=5, test_fraction=0.25)
    assert p.initial.size == 5
    assert p.test.size == 24  # round(96 * 0.25)
    assert p.active.size == 72


def test_partition_validation():
    with pytest.raises(ValueError):
        random_partition(2, rng=0)  # too small for 1/active/test
    # n=3 is the smallest valid dataset: 1 initial, 1 active, 1 test.
    p = random_partition(3, rng=0)
    assert (p.initial.size, p.active.size, p.test.size) == (1, 1, 1)
    with pytest.raises(ValueError):
        random_partition(100, rng=0, n_initial=0)
    with pytest.raises(ValueError):
        random_partition(100, rng=0, test_fraction=0.0)
    with pytest.raises(ValueError):
        random_partition(100, rng=0, test_fraction=1.0)


def test_partition_rejects_n_initial_at_or_above_n():
    """Regression: n_initial >= n must fail loudly up front, not surface
    as an opaque empty-Active error downstream."""
    with pytest.raises(ValueError, match="n_initial=100 must leave room"):
        random_partition(100, rng=0, n_initial=100)
    with pytest.raises(ValueError, match="must leave room"):
        random_partition(50, rng=0, n_initial=120)


def test_partition_dataclass_validation():
    with pytest.raises(ValueError, match="overlap"):
        Partition(
            initial=np.array([0]),
            active=np.array([0, 1]),
            test=np.array([2]),
        )
    with pytest.raises(ValueError):
        Partition(
            initial=np.array([0.5]),  # not integer
            active=np.array([1]),
            test=np.array([2]),
        )
    with pytest.raises(ValueError, match="initial"):
        Partition(
            initial=np.array([], dtype=int),
            active=np.array([1]),
            test=np.array([2]),
        )


def test_random_partitions_batch():
    parts = random_partitions(100, 10, seed=0)
    assert len(parts) == 10
    # Partitions differ from one another.
    assert not np.array_equal(parts[0].active, parts[1].active)
    # But the batch is reproducible.
    again = random_partitions(100, 10, seed=0)
    np.testing.assert_array_equal(parts[3].active, again[3].active)
    with pytest.raises(ValueError):
        random_partitions(100, 0)


@given(
    n=st.integers(10, 500),
    n_initial=st.integers(1, 5),
    frac=st.floats(0.05, 0.5),
)
@settings(max_examples=40, deadline=None)
def test_property_partition_invariants(n, n_initial, frac):
    try:
        p = random_partition(n, rng=0, n_initial=n_initial, test_fraction=frac)
    except ValueError:
        return  # legitimately too small
    assert p.n_total == n
    all_idx = np.concatenate([p.initial, p.active, p.test])
    assert len(set(all_idx.tolist())) == n
    assert p.initial.size == n_initial
