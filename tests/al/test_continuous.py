"""Tests for continuous-domain candidate selection (paper Section VI)."""

import numpy as np
import pytest

from repro.al import (
    ContinuousActiveLearner,
    maximize_cost_efficiency,
    maximize_sd,
)
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


@pytest.fixture()
def left_trained_model():
    """GP trained on [0, 4] of a [0, 10] domain: sigma grows to the right."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 4, size=(15, 1))
    y = 0.5 * X[:, 0] + 0.05 * rng.standard_normal(15)
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    )
    return model.fit(X, y)


def test_maximize_sd_finds_far_corner(left_trained_model):
    result = maximize_sd(left_trained_model, [[0.0, 10.0]], n_starts=6, rng=0)
    # Far from all data, the SD saturates at the prior level; the optimizer
    # must land deep in the unexplored right region.
    assert result.x[0] > 7.0
    _, sd = left_trained_model.predict(result.x[np.newaxis, :], return_std=True)
    assert result.value == pytest.approx(float(sd[0]), rel=1e-9)


def test_maximize_sd_beats_dense_grid(left_trained_model):
    """Continuous optimization must match/beat a 1000-point grid search."""
    grid = np.linspace(0, 10, 1000)[:, np.newaxis]
    _, sd = left_trained_model.predict(grid, return_std=True)
    result = maximize_sd(left_trained_model, [[0.0, 10.0]], n_starts=6, rng=0)
    assert result.value >= sd.max() - 1e-9


def test_maximize_cost_efficiency_tradeoff():
    """CE's optimum shifts toward the cheap side of an uncertainty plateau.

    Train on both ends of the domain with a strongly increasing response:
    the SD peaks mid-domain, while the predicted (log-)cost rises to the
    right, so ``sigma - mu`` peaks left of ``sigma``'s maximum.
    """
    rng = np.random.default_rng(2)
    X = np.concatenate([rng.uniform(0, 2, 8), rng.uniform(8, 10, 8)])[:, np.newaxis]
    y = 0.5 * X[:, 0] + 0.02 * rng.standard_normal(16)
    model = GaussianProcessRegressor(
        kernel=ConstantKernel(4.0, "fixed") * RBF(1.5, "fixed"),
        noise_variance=0.01,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    sd_opt = maximize_sd(model, [[0.0, 10.0]], n_starts=8, rng=0)
    ce_opt = maximize_cost_efficiency(
        model, [[0.0, 10.0]], cost_weight=1.0, n_starts=8, rng=0
    )
    assert 3.0 < sd_opt.x[0] < 7.0  # mid-domain uncertainty bump
    assert ce_opt.x[0] < sd_opt.x[0]  # pushed toward the cheap (low-mu) side


def test_acquisition_respects_bounds(left_trained_model):
    result = maximize_sd(left_trained_model, [[2.0, 3.0]], n_starts=4, rng=0)
    assert 2.0 <= result.x[0] <= 3.0


def test_acquisition_validation(left_trained_model):
    with pytest.raises(ValueError):
        maximize_sd(left_trained_model, [[1.0, 0.0]])
    with pytest.raises(ValueError):
        maximize_sd(left_trained_model, [0.0, 1.0])
    with pytest.raises(RuntimeError):
        maximize_sd(GaussianProcessRegressor(), [[0.0, 1.0]])


def test_continuous_learner_reduces_uncertainty():
    """AL over a continuous box shrinks the max SD across the domain."""
    rng = np.random.default_rng(1)

    def experiment(x):
        return float(np.sin(x[0]) + 0.3 * x[1] + 0.02 * rng.standard_normal())

    learner = ContinuousActiveLearner(
        experiment, [[0.0, 6.0], [0.0, 2.0]], rng=0, n_starts=4
    )
    learner.seed()
    learner.run(12)
    model = learner.model
    probe = np.column_stack(
        [np.repeat(np.linspace(0, 6, 12), 5), np.tile(np.linspace(0, 2, 5), 12)]
    )
    _, sd = model.predict(probe, return_std=True)
    # Early model for comparison: same factory, seed point only.
    early = learner.model_factory()
    X, y = learner.trace.as_arrays()
    early.fit(X[:1], y[:1])
    _, sd_early = early.predict(probe, return_std=True)
    assert sd.max() < sd_early.max()
    # Uncertainty is also fairly uniform after AL (no forgotten corner).
    assert sd.max() < 4.0 * sd.min()


def test_continuous_learner_covers_domain():
    def experiment(x):
        return float(x[0])

    learner = ContinuousActiveLearner(experiment, [[0.0, 1.0]], rng=0, n_starts=4)
    learner.run(8)  # auto-seeds
    X, _ = learner.trace.as_arrays()
    assert X.shape == (9, 1)
    # Visits must spread over the interval, not cluster.
    assert X.min() < 0.15 and X.max() > 0.85


def test_continuous_learner_strategy_option():
    def experiment(x):
        return float(x[0])

    learner = ContinuousActiveLearner(
        experiment, [[0.0, 1.0]], strategy="cost-efficiency", rng=0, n_starts=3
    )
    learner.run(3)
    assert len(learner.trace.X) == 4
    with pytest.raises(ValueError):
        ContinuousActiveLearner(experiment, [[0.0, 1.0]], strategy="ucb")


def test_continuous_learner_custom_seed():
    def experiment(x):
        return float(x[0])

    learner = ContinuousActiveLearner(experiment, [[0.0, 2.0]], rng=0)
    y = learner.seed(np.array([0.5]))
    assert y == 0.5
    np.testing.assert_allclose(learner.trace.X[0], [0.5])
