"""Tests for predictive-interval coverage diagnostics."""

import numpy as np
import pytest

from repro.al.calibration import CoverageReport, coverage_curve, interval_coverage
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor


def _well_specified_model(n_train=60, n_test=400, noise_sd=0.1, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 6, size=(n_train, 1))
    f = np.sin(X[:, 0])
    y = f + noise_sd * rng.standard_normal(n_train)
    model = GaussianProcessRegressor(
        noise_variance=noise_sd**2, noise_variance_bounds="fixed",
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        optimizer=None,
    ).fit(X, y)
    X_test = rng.uniform(0, 6, size=(n_test, 1))
    y_test = np.sin(X_test[:, 0]) + noise_sd * rng.standard_normal(n_test)
    return model, X_test, y_test


def test_well_specified_model_is_calibrated():
    model, X_test, y_test = _well_specified_model()
    report = interval_coverage(model, X_test, y_test)
    assert report.is_calibrated(tol=0.08)
    assert report.mean_absolute_miscalibration < 0.05


def test_overconfident_model_detected():
    """Shrinking the claimed noise makes intervals too narrow -> low coverage."""
    model, X_test, y_test = _well_specified_model(noise_sd=0.2)
    overconfident = GaussianProcessRegressor(
        noise_variance=1e-6, noise_variance_bounds="fixed",
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        optimizer=None,
    ).fit(model.X_train_, model.y_train_)
    report = interval_coverage(overconfident, X_test, y_test)
    assert not report.is_calibrated(tol=0.15)
    # Nominal 95% interval covers far fewer points.
    i95 = report.levels.index(0.95)
    assert report.empirical[i95] < 0.7


def test_underconfident_model_wide_but_covered():
    model, X_test, y_test = _well_specified_model(noise_sd=0.05)
    padded = GaussianProcessRegressor(
        noise_variance=1.0, noise_variance_bounds="fixed",
        kernel=ConstantKernel(1.0, "fixed") * RBF(1.0, "fixed"),
        optimizer=None,
    ).fit(model.X_train_, model.y_train_)
    report = interval_coverage(padded, X_test, y_test)
    # Everything is inside the bloated intervals...
    assert min(report.empirical) > 0.9
    # ...which calibration flags via the low-level mismatch.
    assert not report.is_calibrated(tol=0.15)
    # And sharpness reveals the cost of the padding.
    sharp = interval_coverage(model, X_test, y_test).sharpness
    assert report.sharpness > 3 * sharp


def test_levels_validation():
    model, X_test, y_test = _well_specified_model(n_train=10, n_test=20)
    with pytest.raises(ValueError):
        interval_coverage(model, X_test, y_test, levels=(0.0, 0.5))
    with pytest.raises(ValueError):
        interval_coverage(model, X_test, y_test, levels=())
    with pytest.raises(ValueError):
        interval_coverage(model, X_test, y_test[:-1])


def test_coverage_curve_format():
    report = CoverageReport(
        levels=(0.5, 0.95),
        empirical=(0.48, 0.93),
        mean_absolute_miscalibration=0.02,
        sharpness=0.3,
    )
    text = coverage_curve(report)
    assert "nominal" in text and "95%" in text and "93.0%" in text


def test_al_fitted_model_calibration(fig6_data):
    """The paper-default model (1e-1 floor) is conservative but covering."""
    from repro.al import default_model_factory, random_partition

    X, y, _ = fig6_data
    part = random_partition(X.shape[0], rng=0)
    model = default_model_factory(1e-1)()
    model.fit(X[part.active], y[part.active])
    report = interval_coverage(model, X[part.test], y[part.test])
    # The raised noise floor makes intervals conservative: coverage at or
    # above nominal everywhere (never overconfident).
    assert all(e >= l - 0.05 for e, l in zip(report.empirical, report.levels))
