"""Tests for the PredictionService (chunked queries + hot rollover)."""

import numpy as np
import pytest

from repro import telemetry
from repro.serve import ModelRegistry, PredictionService, RegistryError


@pytest.fixture()
def registry(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    reg.publish(fitted_models[0], health=True)
    return reg


def test_service_requires_nonempty_registry(tmp_path):
    with pytest.raises(RegistryError, match="empty"):
        PredictionService(ModelRegistry(tmp_path / "nothing"))


def test_chunked_predictions_bit_identical(registry, fitted_models, query_block):
    """The acceptance-scale check: a 10k-point block answered by the
    service equals the in-memory model's full-block prediction bitwise."""
    service = PredictionService(registry, chunk_size=2048)
    model = fitted_models[0]
    mu, sd = model.predict(query_block, return_std=True)
    assert np.array_equal(service.predict(query_block), mu)
    mu_s, sd_s = service.predict_std(query_block)
    assert np.array_equal(mu_s, mu)
    assert np.array_equal(sd_s, sd)


def test_include_noise_passthrough(registry, fitted_models):
    service = PredictionService(registry)
    Q = np.random.default_rng(3).uniform(size=(32, 3))
    _, sd_noiseless = fitted_models[0].predict(
        Q, return_std=True, include_noise=False
    )
    _, sd_s = service.predict_std(Q, include_noise=False)
    assert np.array_equal(sd_s, sd_noiseless)


def test_hot_rollover_swaps_served_version(
    registry, fitted_models, query_block
):
    service = PredictionService(registry)
    assert service.version == 1
    before = service.predict(query_block)

    registry.publish(fitted_models[1], health=True)
    # Not yet rolled over: still answering on v1.
    assert service.version == 1
    assert np.array_equal(service.predict(query_block), before)

    assert service.refresh() is True
    assert service.version == 2
    assert service.n_rollovers == 1
    assert np.array_equal(
        service.predict(query_block), fitted_models[1].predict(query_block)
    )
    # Idempotent when nothing new was published.
    assert service.refresh() is False


def test_rollback_rolls_the_service_back_exactly(
    registry, fitted_models, query_block
):
    before = PredictionService(registry).predict(query_block)
    registry.publish(fitted_models[1])
    service = PredictionService(registry)
    assert service.version == 2
    registry.rollback()
    assert service.refresh() is True
    assert service.version == 1
    assert np.array_equal(service.predict(query_block), before)


def test_auto_refresh_folds_rollover_into_queries(registry, fitted_models):
    service = PredictionService(registry, auto_refresh=True)
    Q = np.random.default_rng(4).uniform(size=(16, 3))
    service.predict(Q)
    registry.publish(fitted_models[2])
    out = service.predict(Q)
    assert service.version == 2
    assert np.array_equal(out, fitted_models[2].predict(Q))


def test_pinned_version_never_rolls_over(registry, fitted_models):
    registry.publish(fitted_models[1])
    service = PredictionService(registry, version=1, auto_refresh=True)
    registry.publish(fitted_models[2])
    Q = np.random.default_rng(5).uniform(size=(8, 3))
    service.predict(Q)
    assert service.version == 1
    assert service.refresh() is False
    assert service.n_rollovers == 0


def test_in_flight_snapshot_survives_rollover(registry, fitted_models):
    """A query that captured its snapshot keeps it across a refresh."""
    service = PredictionService(registry)
    model, meta = service._enter_query()
    registry.publish(fitted_models[1])
    service.refresh()
    assert service.version == 2
    # The captured snapshot still answers as v1.
    Q = np.random.default_rng(6).uniform(size=(8, 3))
    assert meta.version == 1
    assert np.array_equal(model.predict(Q), fitted_models[0].predict(Q))


def test_chunk_size_validation(registry):
    with pytest.raises(ValueError, match="chunk_size"):
        PredictionService(registry, chunk_size=0)


def test_service_accepts_path(tmp_path, registry):
    service = PredictionService(str(registry.root))
    assert service.version == 1


def test_serving_telemetry(tmp_path, registry, fitted_models):
    trace = tmp_path / "serve.jsonl"
    with telemetry.session(trace) as reg:
        service = PredictionService(registry)
        Q = np.random.default_rng(7).uniform(size=(100, 3))
        service.predict(Q)
        service.predict_std(Q)
        registry.publish(fitted_models[1])
        service.refresh()
        snap = reg.snapshot()
    assert snap["counters"]["serve.predict.requests"] == 2
    assert snap["counters"]["serve.predict.points"] == 200
    assert snap["counters"]["serve.rollover.total"] == 1
    assert snap["histograms"]["serve.predict.seconds"]["count"] == 2
