"""PredictionService under failure: retries, degraded mode, shedding, deadlines."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    DeadlineExceeded,
    ModelRegistry,
    PredictionService,
    ServiceOverloaded,
)


def _registry(tmp_path, fitted_models, n=1):
    reg = ModelRegistry(tmp_path / "reg")
    for model in fitted_models[:n]:
        reg.publish(model)
    return reg


class _FailThenSucceed:
    """Stand-in for registry.latest_version that fails n times first."""

    def __init__(self, reg, n_failures, exc=OSError("disk glitch")):
        self._real = type(reg).latest_version.__get__(reg)
        self.n_failures = n_failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.exc
        return self._real()


# -------------------------------------------------------------------- retries


def test_refresh_retries_transient_errors_with_backoff(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, refresh_retries=2, retry_backoff_s=0.05)
    sleeps = []
    service._sleep = sleeps.append
    reg.latest_version = _FailThenSucceed(reg, n_failures=2)
    assert service.refresh() is False  # no newer version, but no error either
    assert not service.degraded
    assert len(sleeps) == 2
    # Exponential base with jitter in [0.5, 1.5).
    assert 0.025 <= sleeps[0] < 0.075
    assert 0.05 <= sleeps[1] < 0.15


def test_refresh_exhausted_retries_marks_degraded_and_raises(
    tmp_path, fitted_models
):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, refresh_retries=1, retry_backoff_s=0.001)
    service._sleep = lambda s: None
    reg.latest_version = _FailThenSucceed(reg, n_failures=99)
    with pytest.raises(OSError, match="disk glitch"):
        service.refresh()
    assert service.degraded
    assert service.consecutive_refresh_failures == 1
    with pytest.raises(OSError):
        service.refresh()
    assert service.consecutive_refresh_failures == 2


def test_refresh_success_clears_degraded(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, refresh_retries=0)
    reg.latest_version = _FailThenSucceed(reg, n_failures=1)
    with pytest.raises(OSError):
        service.refresh()
    assert service.degraded
    service.refresh()
    assert not service.degraded
    assert service.consecutive_refresh_failures == 0


# ------------------------------------------------- stale-while-revalidate fix


def test_auto_refresh_query_survives_registry_error(
    tmp_path, fitted_models, query_block
):
    """Satellite fix: a refresh failure must never fail the query."""
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(
        reg, auto_refresh=True, refresh_retries=0
    )
    reg.latest_version = _FailThenSucceed(reg, n_failures=99)
    mean = service.predict(query_block[:100])
    assert mean.shape == (100,)
    assert service.degraded
    assert np.array_equal(mean, fitted_models[0].predict(query_block[:100]))


def test_auto_refresh_recovers_and_rolls_over(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, auto_refresh=True, refresh_retries=0)
    flaky = _FailThenSucceed(reg, n_failures=2)
    reg.latest_version = flaky
    Q = np.random.default_rng(7).uniform(size=(10, 3))
    service.predict(Q)
    assert service.degraded
    # Publish a new version through the real API, then let the flaky
    # manifest reads heal: the next query must roll over.
    del reg.latest_version
    reg.publish(fitted_models[1])
    reg.latest_version = _FailThenSucceed(reg, n_failures=0)
    service.predict(Q)
    assert not service.degraded
    assert service.version == 2
    assert service.n_rollovers == 1


def test_corrupt_latest_served_from_fallback_not_corrupt_model(
    tmp_path, fitted_models
):
    """A torn publish never produces corrupt answers: load() falls back."""
    reg = _registry(tmp_path, fitted_models, n=2)
    service = PredictionService(reg, auto_refresh=True)
    # Corrupt v2 on disk after it was published.
    path = reg.root / "v00002.json"
    path.write_bytes(path.read_bytes()[:50])
    fresh = PredictionService(ModelRegistry(reg.root))
    Q = np.random.default_rng(11).uniform(size=(25, 3))
    assert fresh.version == 1
    assert np.array_equal(fresh.predict(Q), fitted_models[0].predict(Q))


# ------------------------------------------------------------------ admission


class _GatedModel:
    """Wraps a fitted model; predict blocks until the gate opens."""

    def __init__(self, model, gate):
        self._model = model
        self._gate = gate

    def predict(self, X, **kwargs):
        self._gate.wait(timeout=10)
        return self._model.predict(X, **kwargs)


def test_overload_sheds_instead_of_queueing(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, max_inflight=1, max_queue=0)
    gate = threading.Event()
    model, meta = service._snapshot
    service._snapshot = (_GatedModel(model, gate), meta)
    Q = np.random.default_rng(3).uniform(size=(8, 3))
    started = threading.Event()
    results = []

    def blocked_query():
        started.set()
        results.append(service.predict(Q))

    t = threading.Thread(target=blocked_query)
    t.start()
    started.wait(timeout=5)
    time.sleep(0.05)  # let the thread take the inflight slot
    with pytest.raises(ServiceOverloaded):
        service.predict(Q)
    assert service.n_shed == 1
    gate.set()
    t.join(timeout=10)
    assert len(results) == 1
    # The slot was released; new queries are admitted again.
    assert np.array_equal(service.predict(Q), results[0])


def test_admission_wait_is_bounded(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(
        reg, max_inflight=1, max_queue=4, queue_timeout_s=0.05
    )
    gate = threading.Event()
    model, meta = service._snapshot
    service._snapshot = (_GatedModel(model, gate), meta)
    Q = np.random.default_rng(3).uniform(size=(4, 3))
    t = threading.Thread(target=lambda: service.predict(Q))
    t.start()
    time.sleep(0.05)
    t0 = time.monotonic()
    with pytest.raises(ServiceOverloaded):
        service.predict(Q)  # queued, then times out after queue_timeout_s
    assert time.monotonic() - t0 < 5.0
    gate.set()
    t.join(timeout=10)


# ------------------------------------------------------------------ deadlines


class _SlowModel:
    def __init__(self, model, delay):
        self._model = model
        self._delay = delay

    def predict(self, X, **kwargs):
        time.sleep(self._delay)
        return self._model.predict(X, **kwargs)


def test_deadline_exceeded_between_chunks(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, chunk_size=10, deadline_s=0.05)
    model, meta = service._snapshot
    service._snapshot = (_SlowModel(model, 0.1), meta)
    Q = np.random.default_rng(3).uniform(size=(30, 3))  # 3 chunks
    with pytest.raises(DeadlineExceeded):
        service.predict(Q)


def test_per_query_deadline_overrides_service_default(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, chunk_size=10, deadline_s=0.01)
    model, meta = service._snapshot
    service._snapshot = (_SlowModel(model, 0.02), meta)
    Q = np.random.default_rng(3).uniform(size=(30, 3))
    # A generous per-query deadline lets the same query finish.
    mean = service.predict(Q, deadline_s=30.0)
    assert mean.shape == (30,)


def test_health_snapshot(tmp_path, fitted_models):
    reg = _registry(tmp_path, fitted_models)
    service = PredictionService(reg, max_inflight=2)
    h = service.health()
    assert h["version"] == 1
    assert h["degraded"] is False
    assert h["n_shed"] == 0
    assert h["inflight"] == 0
