"""Tests for the versioned model registry."""

import json

import numpy as np
import pytest

from repro.al.guardrails import ModelHealth
from repro.gp import GaussianProcessRegressor
from repro.serve import ModelRegistry, ModelVersion, RegistryError


def test_empty_registry_reads_as_empty(tmp_path):
    reg = ModelRegistry(tmp_path / "reg")
    assert reg.empty
    assert reg.latest_version() is None
    assert reg.versions() == []
    with pytest.raises(RegistryError, match="empty"):
        reg.describe()
    with pytest.raises(RegistryError, match="empty"):
        reg.load()


def test_publish_load_bit_identical(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    model = fitted_models[0]
    meta = reg.publish(model)
    assert meta.version == 1
    assert meta.training_hash == model.training_hash()
    assert meta.n_train == model.X_train_.shape[0]
    loaded, loaded_meta = reg.load()
    assert loaded_meta == meta
    Q = np.random.default_rng(1).uniform(size=(50, 3))
    mu_a, sd_a = model.predict(Q, return_std=True)
    mu_b, sd_b = loaded.predict(Q, return_std=True)
    assert np.array_equal(mu_a, mu_b)
    assert np.array_equal(sd_a, sd_b)


def test_versions_are_monotonic_and_latest_tracks(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    for i, model in enumerate(fitted_models, start=1):
        assert reg.publish(model).version == i
        assert reg.latest_version() == i
    assert [m.version for m in reg.versions()] == [1, 2, 3]


def test_rollback_and_set_latest(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    for model in fitted_models:
        reg.publish(model)
    assert reg.rollback().version == 2
    assert reg.latest_version() == 2
    assert reg.rollback().version == 1
    with pytest.raises(RegistryError, match="oldest"):
        reg.rollback()
    # Nothing was deleted; latest can move forward again.
    assert reg.set_latest(3).version == 3
    with pytest.raises(RegistryError, match="no version 7"):
        reg.set_latest(7)


def test_rollback_restores_exact_predictions(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    reg.publish(fitted_models[0])
    reg.publish(fitted_models[1])
    Q = np.random.default_rng(2).uniform(size=(64, 3))
    expected = fitted_models[0].predict(Q)
    reg.rollback()
    restored, meta = reg.load()
    assert meta.version == 1
    assert np.array_equal(restored.predict(Q), expected)


def test_health_metadata_from_report(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    report = ModelHealth().check(fitted_models[2])
    meta = reg.publish(fitted_models[2], health=report)
    reread = reg.describe(meta.version)
    assert reread.healthy == report.healthy
    assert reread.issues == tuple(report.issues)


@pytest.mark.parametrize(
    "health, expect",
    [
        (None, (None, ())),
        (True, (True, ())),
        (False, (False, ())),
        ({"healthy": False, "issues": ["lml_regression"]},
         (False, ("lml_regression",))),
    ],
)
def test_health_metadata_variants(tmp_path, fitted_models, health, expect):
    reg = ModelRegistry(tmp_path / "reg")
    meta = reg.publish(fitted_models[0], health=health)
    assert (meta.healthy, meta.issues) == expect


def test_extra_metadata_roundtrips(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    meta = reg.publish(
        fitted_models[0], extra={"round": 4, "strategy": "variance_reduction"}
    )
    assert reg.describe(meta.version).extra == {
        "round": 4,
        "strategy": "variance_reduction",
    }


def test_unfitted_model_rejected(tmp_path):
    reg = ModelRegistry(tmp_path / "reg")
    with pytest.raises(RegistryError, match="unfitted"):
        reg.publish(GaussianProcessRegressor())


def test_corrupt_version_file_detected(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    meta = reg.publish(fitted_models[0])
    path = reg._version_path(meta.version)
    path.write_text(path.read_text()[:100])
    with pytest.raises(ValueError, match="corrupt"):
        reg.load()


def test_tampered_model_payload_detected(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    meta = reg.publish(fitted_models[0])
    path = reg._version_path(meta.version)
    doc = json.loads(path.read_text())
    doc["model"]["fit"]["alpha"][0] = 0.0
    doc["model"]["fit"]["y"][0] += 0.25
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="hash mismatch"):
        reg.load()


def test_unsupported_manifest_version_rejected(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    reg.publish(fitted_models[0])
    doc = json.loads(reg.manifest_path.read_text())
    doc["version"] = 99
    reg.manifest_path.write_text(json.dumps(doc))
    with pytest.raises(RegistryError, match="manifest version"):
        reg.latest_version()


def test_version_file_lands_before_manifest(tmp_path, fitted_models, monkeypatch):
    """Publish ordering: a crash between the two writes must leave the
    manifest still pointing at the previous complete version."""
    reg = ModelRegistry(tmp_path / "reg")
    reg.publish(fitted_models[0])

    import repro.serve.registry as registry_mod

    real_write = registry_mod.write_json_atomic
    calls = []

    def tracking_write(payload, path):
        calls.append(str(path))
        if len(calls) == 1:
            # First write of this publish = the version file; crash after.
            real_write(payload, path)
            raise RuntimeError("simulated crash before manifest repoint")
        return real_write(payload, path)

    monkeypatch.setattr(registry_mod, "write_json_atomic", tracking_write)
    with pytest.raises(RuntimeError, match="simulated crash"):
        reg.publish(fitted_models[1])
    monkeypatch.setattr(registry_mod, "write_json_atomic", real_write)
    # The orphaned v2 file exists but the registry still serves v1.
    assert reg._version_path(2).exists()
    assert reg.latest_version() == 1
    model, meta = reg.load()
    assert meta.version == 1
    # A later publish does not reuse the orphaned number's slot silently:
    # it writes the next number after the recorded history.
    meta3 = reg.publish(fitted_models[2])
    assert meta3.version == 2  # history only knew v1
    assert reg.latest_version() == 2


def test_model_version_as_dict_roundtrip():
    meta = ModelVersion(
        version=3,
        created_at=1723100000.0,
        training_hash="ab" * 32,
        n_train=17,
        lml=-4.25,
        noise_variance=1e-3,
        healthy=True,
        issues=("x",),
        extra={"round": 2},
    )
    assert ModelVersion.from_dict(meta.as_dict()) == meta
