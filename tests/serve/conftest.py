"""Shared fixtures for the registry/serving tests."""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor


@pytest.fixture(scope="module")
def fitted_models():
    """Three successively larger fits on the same underlying function."""
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(40, 3))
    y = np.sin(X @ np.array([1.0, 2.0, 0.5]))
    models = []
    for n in (20, 30, 40):
        models.append(
            GaussianProcessRegressor(rng=0, n_restarts=1, normalize_y=True).fit(
                X[:n], y[:n]
            )
        )
    return models


@pytest.fixture()
def query_block():
    return np.random.default_rng(99).uniform(size=(10_000, 3))
