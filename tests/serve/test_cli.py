"""Tests for the ``python -m repro serve`` CLI."""

import io
import json

import numpy as np
import pytest

from repro.serve import ModelRegistry
from repro.serve.cli import main


@pytest.fixture()
def registry(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    reg.publish(fitted_models[0], health=True)
    reg.publish(fitted_models[1], health=True)
    return reg


def _jsonl(text):
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def test_info_lists_versions(registry, capsys):
    assert main([str(registry.root), "--info"]) == 0
    out = capsys.readouterr().out
    assert "v00001" in out and "v00002" in out
    assert "latest:   2" in out
    assert out.count("health=ok") == 2


def test_query_file_answers_match_model(
    registry, fitted_models, tmp_path, capsys
):
    Q = np.random.default_rng(0).uniform(size=(5, 3)).tolist()
    qfile = tmp_path / "q.jsonl"
    qfile.write_text(
        json.dumps(Q) + "\n" + json.dumps({"x": Q[0]}) + "\n"
    )
    out_file = tmp_path / "answers.jsonl"
    assert main(
        [str(registry.root), "--query", str(qfile), "--std", "--out", str(out_file)]
    ) == 0
    answers = _jsonl(out_file.read_text())
    assert [a["n"] for a in answers] == [5, 1]
    assert all(a["version"] == 2 for a in answers)
    mu, sd = fitted_models[1].predict(np.asarray(Q), return_std=True)
    assert answers[0]["mean"] == mu.tolist()
    assert answers[0]["std"] == sd.tolist()
    assert "served 2 queries on v00002" in capsys.readouterr().err


def test_stdin_loop_with_commands(registry, capsys, monkeypatch):
    lines = "\n".join(
        [
            json.dumps([[0.1, 0.2, 0.3]]),
            json.dumps({"cmd": "version"}),
            json.dumps({"cmd": "refresh"}),
            json.dumps({"cmd": "bogus"}),
            "not json",
            json.dumps({"y": 1}),
        ]
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))
    assert main([str(registry.root), "--stdin"]) == 0
    answers = _jsonl(capsys.readouterr().out)
    assert answers[0]["version"] == 2 and answers[0]["n"] == 1
    assert answers[1]["n_train"] == 30 and answers[1]["healthy"] is True
    assert answers[2] == {"rolled_over": False, "version": 2}
    assert "unknown cmd" in answers[3]["error"]
    assert "error" in answers[4]
    assert "error" in answers[5]


def test_pinned_version_query(registry, fitted_models, tmp_path, capsys):
    Q = [[0.4, 0.4, 0.4]]
    qfile = tmp_path / "q.jsonl"
    qfile.write_text(json.dumps(Q) + "\n")
    assert main([str(registry.root), "--query", str(qfile), "--version", "1"]) == 0
    answer = _jsonl(capsys.readouterr().out)[0]
    assert answer["version"] == 1
    assert answer["mean"] == fitted_models[0].predict(np.asarray(Q)).tolist()


def test_rollback_and_set_latest(registry, capsys):
    assert main([str(registry.root), "--rollback"]) == 0
    assert "latest -> v00001" in capsys.readouterr().out
    assert registry.latest_version() == 1
    assert main([str(registry.root), "--set-latest", "2"]) == 0
    assert registry.latest_version() == 2


def test_rollback_at_oldest_is_an_error(registry, capsys):
    registry.rollback()
    assert main([str(registry.root), "--rollback"]) == 1
    assert "nothing to roll back" in capsys.readouterr().err


def test_empty_registry_query_is_an_error(tmp_path, capsys):
    qfile = tmp_path / "q.jsonl"
    qfile.write_text("[[0.0, 0.0, 0.0]]\n")
    assert main([str(tmp_path / "empty"), "--query", str(qfile)]) == 1
    assert "empty" in capsys.readouterr().err


def test_trace_writes_serving_telemetry(registry, tmp_path, capsys):
    qfile = tmp_path / "q.jsonl"
    qfile.write_text("[[0.1, 0.1, 0.1]]\n")
    trace = tmp_path / "trace.jsonl"
    assert main(
        [str(registry.root), "--query", str(qfile), "--trace", str(trace)]
    ) == 0
    events = _jsonl(trace.read_text())
    metrics = [e for e in events if e.get("ev") == "metrics"]
    counters = metrics[-1]["metrics"]["counters"]
    assert counters["serve.predict.requests"] == 1
    assert "serve.predict.seconds" in metrics[-1]["metrics"]["histograms"]


def _corrupt(registry, version, keep=40):
    path = registry.root / f"v{version:05d}.json"
    path.write_bytes(path.read_bytes()[:keep])


def test_info_reports_integrity(registry, capsys):
    assert main([str(registry.root), "--info"]) == 0
    out = capsys.readouterr().out
    assert "integrity: ok (2/2 verified, 0 quarantined)" in out


def test_info_flags_corruption(registry, capsys):
    _corrupt(registry, 2)
    assert main([str(registry.root), "--info"]) == 0
    out = capsys.readouterr().out
    assert "integrity: CORRUPT" in out
    assert "corrupt v00002" in out


def test_fsck_repairs_and_exits_zero(registry, capsys):
    _corrupt(registry, 2)
    assert main([str(registry.root), "--fsck"]) == 0
    out = capsys.readouterr().out
    assert "quarantining v00002" in out
    assert "latest:      v00002 -> v00001" in out
    assert "servable:    yes" in out
    assert registry.latest_version() == 1
    assert registry.quarantined().keys() == {2}


def test_fsck_unservable_registry_exits_nonzero(registry, capsys):
    _corrupt(registry, 1)
    _corrupt(registry, 2)
    assert main([str(registry.root), "--fsck"]) == 1
    assert "servable:    NO" in capsys.readouterr().out


def test_fsck_clean_registry_is_a_noop(registry, capsys):
    assert main([str(registry.root), "--fsck"]) == 0
    out = capsys.readouterr().out
    assert "corrupt:     0" in out
    assert registry.latest_version() == 2


def test_watch_survives_transient_refresh_failure(
    registry, capsys, monkeypatch
):
    """Satellite fix: --watch keeps serving through refresh failures."""
    from repro.serve import cli as cli_mod

    real_refresh = cli_mod.PredictionService.refresh
    fail_twice = {"n": 0}

    def flaky_refresh(self):
        fail_twice["n"] += 1
        if fail_twice["n"] <= 2:
            self._degraded = True
            self.consecutive_refresh_failures += 1
            raise OSError("transient manifest glitch")
        return real_refresh(self)

    monkeypatch.setattr(cli_mod.PredictionService, "refresh", flaky_refresh)
    lines = "\n".join(json.dumps([[0.1, 0.2, 0.3]]) for _ in range(4))
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))
    assert main([str(registry.root), "--stdin", "--watch"]) == 0
    captured = capsys.readouterr()
    answers = _jsonl(captured.out)
    assert len(answers) == 4
    assert all("mean" in a for a in answers)
    assert "degraded" in captured.err
    assert "recovered" in captured.err


def test_watch_gives_up_after_consecutive_failures(
    registry, capsys, monkeypatch
):
    from repro.serve import cli as cli_mod

    def always_fail(self):
        self._degraded = True
        self.consecutive_refresh_failures += 1
        raise OSError("manifest gone")

    monkeypatch.setattr(cli_mod.PredictionService, "refresh", always_fail)
    lines = "\n".join(json.dumps([[0.1, 0.2, 0.3]]) for _ in range(10))
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))
    assert (
        main(
            [str(registry.root), "--stdin", "--watch",
             "--max-refresh-failures", "3"]
        )
        == 2
    )
    captured = capsys.readouterr()
    # Served from the held snapshot until the limit, then stopped.
    assert len(_jsonl(captured.out)) == 3
    assert "giving up" in captured.err
