"""Tests for the ``python -m repro serve`` CLI."""

import io
import json

import numpy as np
import pytest

from repro.serve import ModelRegistry
from repro.serve.cli import main


@pytest.fixture()
def registry(tmp_path, fitted_models):
    reg = ModelRegistry(tmp_path / "reg")
    reg.publish(fitted_models[0], health=True)
    reg.publish(fitted_models[1], health=True)
    return reg


def _jsonl(text):
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def test_info_lists_versions(registry, capsys):
    assert main([str(registry.root), "--info"]) == 0
    out = capsys.readouterr().out
    assert "v00001" in out and "v00002" in out
    assert "latest:   2" in out
    assert out.count("health=ok") == 2


def test_query_file_answers_match_model(
    registry, fitted_models, tmp_path, capsys
):
    Q = np.random.default_rng(0).uniform(size=(5, 3)).tolist()
    qfile = tmp_path / "q.jsonl"
    qfile.write_text(
        json.dumps(Q) + "\n" + json.dumps({"x": Q[0]}) + "\n"
    )
    out_file = tmp_path / "answers.jsonl"
    assert main(
        [str(registry.root), "--query", str(qfile), "--std", "--out", str(out_file)]
    ) == 0
    answers = _jsonl(out_file.read_text())
    assert [a["n"] for a in answers] == [5, 1]
    assert all(a["version"] == 2 for a in answers)
    mu, sd = fitted_models[1].predict(np.asarray(Q), return_std=True)
    assert answers[0]["mean"] == mu.tolist()
    assert answers[0]["std"] == sd.tolist()
    assert "served 2 queries on v00002" in capsys.readouterr().err


def test_stdin_loop_with_commands(registry, capsys, monkeypatch):
    lines = "\n".join(
        [
            json.dumps([[0.1, 0.2, 0.3]]),
            json.dumps({"cmd": "version"}),
            json.dumps({"cmd": "refresh"}),
            json.dumps({"cmd": "bogus"}),
            "not json",
            json.dumps({"y": 1}),
        ]
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))
    assert main([str(registry.root), "--stdin"]) == 0
    answers = _jsonl(capsys.readouterr().out)
    assert answers[0]["version"] == 2 and answers[0]["n"] == 1
    assert answers[1]["n_train"] == 30 and answers[1]["healthy"] is True
    assert answers[2] == {"rolled_over": False, "version": 2}
    assert "unknown cmd" in answers[3]["error"]
    assert "error" in answers[4]
    assert "error" in answers[5]


def test_pinned_version_query(registry, fitted_models, tmp_path, capsys):
    Q = [[0.4, 0.4, 0.4]]
    qfile = tmp_path / "q.jsonl"
    qfile.write_text(json.dumps(Q) + "\n")
    assert main([str(registry.root), "--query", str(qfile), "--version", "1"]) == 0
    answer = _jsonl(capsys.readouterr().out)[0]
    assert answer["version"] == 1
    assert answer["mean"] == fitted_models[0].predict(np.asarray(Q)).tolist()


def test_rollback_and_set_latest(registry, capsys):
    assert main([str(registry.root), "--rollback"]) == 0
    assert "latest -> v00001" in capsys.readouterr().out
    assert registry.latest_version() == 1
    assert main([str(registry.root), "--set-latest", "2"]) == 0
    assert registry.latest_version() == 2


def test_rollback_at_oldest_is_an_error(registry, capsys):
    registry.rollback()
    assert main([str(registry.root), "--rollback"]) == 1
    assert "nothing to roll back" in capsys.readouterr().err


def test_empty_registry_query_is_an_error(tmp_path, capsys):
    qfile = tmp_path / "q.jsonl"
    qfile.write_text("[[0.0, 0.0, 0.0]]\n")
    assert main([str(tmp_path / "empty"), "--query", str(qfile)]) == 1
    assert "empty" in capsys.readouterr().err


def test_trace_writes_serving_telemetry(registry, tmp_path, capsys):
    qfile = tmp_path / "q.jsonl"
    qfile.write_text("[[0.1, 0.1, 0.1]]\n")
    trace = tmp_path / "trace.jsonl"
    assert main(
        [str(registry.root), "--query", str(qfile), "--trace", str(trace)]
    ) == 0
    events = _jsonl(trace.read_text())
    metrics = [e for e in events if e.get("ev") == "metrics"]
    counters = metrics[-1]["metrics"]["counters"]
    assert counters["serve.predict.requests"] == 1
    assert "serve.predict.seconds" in metrics[-1]["metrics"]["histograms"]
