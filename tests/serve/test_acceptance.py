"""End-to-end acceptance: campaign publishes, the service serves.

The ISSUE's acceptance criterion, verbatim: a campaign run with publishing
enabled yields a registry from which a ``PredictionService`` answers a
10k-point query block bit-identically to the in-memory model, before and
after a hot rollover, and ``rollback()`` restores the prior version's
exact outputs.
"""

import numpy as np
import pytest

from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.datasets.generate import ModelExecutor
from repro.serve import ModelRegistry, PredictionService


def _candidates():
    sizes = [48**3, 96**3, 192**3, 384**3]
    nps = [1, 8, 32, 128]
    freqs = [1.2, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


def _campaign(registry, n_rounds=3, guardrails=False, rng=0):
    config = CampaignConfig(
        operator="poisson1",
        candidates=_candidates(),
        batch_size=2,
        n_rounds=n_rounds,
    )
    return OnlineCampaign(
        config,
        ModelExecutor(),
        rng=rng,
        guardrails=guardrails,
        registry=registry,
    )


@pytest.fixture(scope="module")
def query_block_features():
    """10k query points in the campaign's (log size, log np, freq) space."""
    rng = np.random.default_rng(1234)
    Q = np.empty((10_000, 3))
    Q[:, 0] = rng.uniform(np.log10(48**3), np.log10(384**3), size=len(Q))
    Q[:, 1] = rng.uniform(0, 7, size=len(Q))
    Q[:, 2] = rng.uniform(1.2, 2.4, size=len(Q))
    return Q


def test_campaign_to_service_bit_identical_with_rollover_and_rollback(
    tmp_path, query_block_features
):
    registry = ModelRegistry(tmp_path / "reg")
    Q = query_block_features

    # Round 1 of serving: a first campaign populates the registry.
    result1 = _campaign(registry, n_rounds=2, rng=0).run()
    service = PredictionService(registry)
    v_before = service.version
    meta_before = service.meta
    assert meta_before.extra.get("final") is True
    assert meta_before.training_hash == result1.model.training_hash()

    mu_mem, sd_mem = result1.model.predict(Q, return_std=True)
    mu_srv, sd_srv = service.predict_std(Q)
    assert np.array_equal(mu_srv, mu_mem)
    assert np.array_equal(sd_srv, sd_mem)

    # A second campaign publishes newer versions while the service is
    # attached; a refresh hot-rolls it over.
    result2 = _campaign(registry, n_rounds=2, rng=1).run()
    assert service.version == v_before  # nothing rolled yet
    assert service.refresh() is True
    assert service.version > v_before
    mu_mem2 = result2.model.predict(Q)
    assert np.array_equal(service.predict(Q), mu_mem2)

    # Roll the published pointer back: the service answers with the prior
    # version's exact outputs again.
    while registry.latest_version() != v_before:
        registry.rollback()
    assert service.refresh() is True
    assert service.version == v_before
    mu_back, sd_back = service.predict_std(Q)
    assert np.array_equal(mu_back, mu_mem)
    assert np.array_equal(sd_back, sd_mem)


def test_guarded_campaign_annotates_health(tmp_path):
    registry = ModelRegistry(tmp_path / "reg")
    _campaign(registry, n_rounds=2, guardrails=True, rng=2).run()
    versions = registry.versions()
    assert versions, "guarded campaign published nothing"
    # Every published version carries a health verdict (the gate ran).
    assert all(m.healthy is not None for m in versions)
    rounds = [m.extra.get("round") for m in versions if not m.extra.get("final")]
    assert rounds == sorted(rounds)
    assert versions[-1].extra.get("final") is True


def test_learner_publishes_gated_refits(tmp_path, fig6_data):
    from repro.al.learner import ActiveLearner
    from repro.al.partition import random_partition
    from repro.al.strategies import VarianceReduction

    X, y, costs = fig6_data
    registry = ModelRegistry(tmp_path / "reg")
    learner = ActiveLearner(
        X,
        y,
        costs,
        random_partition(len(y), rng=0),
        VarianceReduction(),
        guardrails=True,
        registry=registry,
    )
    for _ in range(3):
        learner.step()
    versions = registry.versions()
    assert len(versions) == 3
    assert [m.extra["iteration"] for m in versions] == [0, 1, 2]
    assert versions[-1].training_hash == learner.model.training_hash()
    # The served latest equals the learner's current model bitwise.
    service = PredictionService(registry)
    Q = X[:256]
    assert np.array_equal(service.predict(Q), learner.model.predict(Q))
