"""Registry integrity: checksums, last-known-good fallback, fsck, quarantine."""

import json

import numpy as np
import pytest

from repro.serve import (
    ModelRegistry,
    RegistryError,
    RegistryIntegrityError,
    model_checksum,
)


def _version_path(reg, version):
    return reg.root / f"v{version:05d}.json"


def _bit_flip(path, offset=-40):
    data = bytearray(path.read_bytes())
    # Flip a bit inside the model payload tail (past the header fields).
    data[offset] ^= 0x01
    path.write_bytes(bytes(data))


def _truncate(path, keep=30):
    path.write_bytes(path.read_bytes()[:keep])


def _published(tmp_path, fitted_models, n=3):
    reg = ModelRegistry(tmp_path / "reg")
    for model in fitted_models[:n]:
        reg.publish(model)
    return reg


# ------------------------------------------------------------------ checksums


def test_publish_records_matching_checksums(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models, n=1)
    meta = reg.describe(1)
    payload = json.loads(_version_path(reg, 1).read_text())
    assert meta.checksum is not None
    assert payload["checksum"] == meta.checksum
    assert model_checksum(payload["model"]) == meta.checksum


def test_checksum_survives_parse_redump_roundtrip(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models, n=1)
    path = _version_path(reg, 1)
    payload = json.loads(path.read_text())
    # Re-serialize with different whitespace: content checksum must hold
    # (it covers the canonical JSON of the model dict, not file bytes).
    path.write_text(json.dumps(payload, indent=2))
    model, meta = reg.load(1)
    assert meta.version == 1


def test_bit_flip_in_model_detected_on_explicit_load(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models, n=1)
    _bit_flip(_version_path(reg, 1))
    with pytest.raises((RegistryIntegrityError, ValueError)):
        reg.load(1)


def test_missing_version_file_detected(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models, n=1)
    _version_path(reg, 1).unlink()
    with pytest.raises(RegistryIntegrityError, match="missing"):
        reg.load(1)


def test_legacy_entry_without_checksum_still_loads(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models, n=1)
    # Simulate a pre-checksum registry: strip the checksum everywhere.
    path = _version_path(reg, 1)
    payload = json.loads(path.read_text())
    payload.pop("checksum", None)
    path.write_text(json.dumps(payload))
    manifest = json.loads(reg.manifest_path.read_text())
    manifest["entries"]["1"].pop("checksum", None)
    reg.manifest_path.write_text(json.dumps(manifest))
    model, meta = reg.load()
    assert meta.version == 1
    assert meta.checksum is None


# ------------------------------------------------------------------- fallback


def test_load_latest_falls_back_to_last_known_good(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    _bit_flip(_version_path(reg, 3))
    model, meta = reg.load()
    assert meta.version == 2
    # The served model really is v2, bit for bit.
    Q = np.random.default_rng(5).uniform(size=(20, 3))
    assert np.array_equal(model.predict(Q), fitted_models[1].predict(Q))


def test_fallback_walks_past_multiple_corrupt_versions(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    _truncate(_version_path(reg, 3))
    _bit_flip(_version_path(reg, 2))
    _, meta = reg.load()
    assert meta.version == 1


def test_all_versions_corrupt_raises_integrity_error(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    for v in (1, 2, 3):
        _truncate(_version_path(reg, v))
    with pytest.raises(RegistryIntegrityError, match="no loadable version"):
        reg.load()


def test_fallback_respects_rollback_pointer(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    reg.rollback()  # latest -> 2
    _truncate(_version_path(reg, 2))
    _, meta = reg.load()
    # Falls back below the pointer, never forward past it.
    assert meta.version == 1


# ----------------------------------------------------------------------- fsck


def test_fsck_clean_registry_reports_all_healthy(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    report = reg.fsck()
    assert report.checked == 3
    assert report.healthy == [1, 2, 3]
    assert report.corrupt == []
    assert not report.repaired
    assert report.servable
    assert report.latest_after == 3


def test_fsck_quarantines_and_repoints_latest(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    _bit_flip(_version_path(reg, 3))
    report = reg.fsck()
    assert [v for v, _ in report.corrupt] == [3]
    assert report.repaired
    assert report.servable
    assert report.latest_before == 3
    assert report.latest_after == 2
    assert reg.latest_version() == 2
    # The file moved to the sidecar, nothing deleted.
    assert not _version_path(reg, 3).exists()
    assert (reg.root / "corrupt" / "v00003.json").exists()
    assert reg.quarantined().keys() == {3}
    # The registry serves cleanly afterwards (no fallback path needed).
    _, meta = reg.load()
    assert meta.version == 2


def test_fsck_audit_mode_touches_nothing(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    _bit_flip(_version_path(reg, 3))
    report = reg.fsck(repair=False)
    assert [v for v, _ in report.corrupt] == [3]
    assert not report.repaired
    assert report.latest_after == 2  # advisory
    assert reg.latest_version() == 3  # untouched
    assert _version_path(reg, 3).exists()
    assert reg.quarantined() == {}


def test_fsck_idempotent(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    _truncate(_version_path(reg, 2))
    first = reg.fsck()
    second = reg.fsck()
    assert [v for v, _ in first.corrupt] == [2]
    assert second.corrupt == []
    assert second.already_quarantined == [2]
    assert second.healthy == [1, 3]


def test_fsck_total_loss_leaves_unservable_registry(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models, n=2)
    _truncate(_version_path(reg, 1))
    _truncate(_version_path(reg, 2))
    report = reg.fsck()
    assert not report.servable
    assert report.latest_after is None
    with pytest.raises(RegistryError):
        reg.load()


# ----------------------------------------------------------------- quarantine


def test_quarantined_version_refused_everywhere(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    _bit_flip(_version_path(reg, 2))
    reg.fsck()
    with pytest.raises(RegistryError, match="quarantined"):
        reg.load(2)
    with pytest.raises(RegistryError, match="quarantined"):
        reg.set_latest(2)


def test_rollback_skips_quarantined_versions(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models)
    _bit_flip(_version_path(reg, 2))
    reg.fsck()
    assert reg.latest_version() == 3
    # Rolling back from 3 must land on 1, skipping quarantined 2.
    assert reg.rollback().version == 1


def test_publish_after_quarantine_resumes_serving(tmp_path, fitted_models):
    reg = _published(tmp_path, fitted_models, n=2)
    _truncate(_version_path(reg, 2))
    reg.fsck()
    meta = reg.publish(fitted_models[2])
    assert meta.version == 3
    _, served = reg.load()
    assert served.version == 3
