"""Session lifecycle, disabled-mode no-ops, and an instrumented campaign."""

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry.summarize import read_trace, summarize_trace, validate_trace


@pytest.fixture(autouse=True)
def _clean_telemetry_state():
    """Never leak an enabled session into other tests."""
    yield
    telemetry.disable()


class TestLifecycle:
    def test_disabled_hooks_are_noops(self):
        assert not telemetry.enabled()
        telemetry.count("x")
        telemetry.gauge_set("g", 1.0)
        telemetry.observe("h", 2.0)
        telemetry.event("e", a=1)
        sp = telemetry.span("s", b=2)
        with sp as inner:
            inner.set(c=3)
        assert telemetry.get_registry() is None
        assert telemetry.get_writer() is None

    def test_disabled_span_is_shared_singleton(self):
        assert telemetry.span("a") is telemetry.span("b")

    def test_enable_disable_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        reg = telemetry.enable(path)
        assert telemetry.enabled()
        telemetry.count("n", 2)
        assert reg.counter("n").value == 2
        telemetry.disable()
        assert not telemetry.enabled()
        events = read_trace(path)
        assert events[-1]["ev"] == "metrics"
        assert events[-1]["metrics"]["counters"]["n"] == 2

    def test_double_enable_raises(self):
        telemetry.enable()
        with pytest.raises(RuntimeError, match="already enabled"):
            telemetry.enable()

    def test_registry_only_session(self):
        with telemetry.session() as reg:
            telemetry.count("n")
            telemetry.event("dropped")  # no writer: silently ignored
            assert telemetry.span("s") is telemetry.span("s")  # null span
        assert reg.counter("n").value == 1

    def test_session_closes_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with telemetry.session(path):
                telemetry.count("n")
                raise RuntimeError("boom")
        assert not telemetry.enabled()
        assert read_trace(path)[-1]["ev"] == "metrics"


def _tiny_campaign(trace_path, *, fast_refits=False, refit_every=1, n_rounds=3):
    from repro.al.campaign import CampaignConfig, OnlineCampaign
    from repro.datasets.generate import ModelExecutor

    rng = np.random.default_rng(3)
    candidates = np.column_stack(
        [
            rng.choice([16, 32, 64], size=12),
            rng.choice([8, 16, 32, 64], size=12),
            rng.choice([1.2, 1.6, 2.0], size=12),
        ]
    )
    config = CampaignConfig(
        operator="poisson1",
        candidates=candidates,
        batch_size=2,
        n_rounds=n_rounds,
    )
    with telemetry.session(trace_path):
        campaign = OnlineCampaign(
            config,
            executor=ModelExecutor(),
            rng=7,
            fast_refits=fast_refits,
            refit_every=refit_every,
        )
        result = campaign.run()
    return result


class TestInstrumentedCampaign:
    def test_trace_is_schema_valid(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = _tiny_campaign(path)
        assert len(result.rounds) == 3
        events = read_trace(path)
        assert validate_trace(events) == []

    def test_expected_event_sequence_and_nesting(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        _tiny_campaign(path)
        events = read_trace(path)

        # The first span is the campaign, the last event the snapshot.
        first_span = next(e for e in events if e["ev"] == "span_start")
        assert first_span["name"] == "campaign"
        assert first_span["mode"] == "run"
        assert events[-1]["ev"] == "metrics"

        starts = {e["span"]: e for e in events if e["ev"] == "span_start"}
        names = {sid: e["name"] for sid, e in starts.items()}

        rounds = [e for e in starts.values() if e["name"] == "round"]
        assert [r["round"] for r in rounds] == [0, 1, 2]
        # campaign > round > fit > restart
        for r in rounds:
            assert names[r["parent"]] == "campaign"
        fit_spans = [e for e in starts.values() if e["name"] == "fit"]
        assert fit_spans, "expected at least one fit span"
        # Fits inside the round loop nest under a round; the final model
        # fit after the loop nests directly under the campaign.
        fit_parents = {names[f["parent"]] for f in fit_spans}
        assert "round" in fit_parents
        assert fit_parents <= {"round", "campaign"}
        restarts = [e for e in starts.values() if e["name"] == "restart"]
        assert restarts, "expected restart spans under fits"
        for r in restarts:
            assert names[r["parent"]] == "fit"
        # submit waves carry the scheduler seed for reproducibility.
        waves = [
            e for e in events
            if e["ev"] == "point" and e["name"] == "submit.wave"
        ]
        assert waves and all("scheduler_seed" in w for w in waves)

    def test_metrics_count_update_vs_refit(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        _tiny_campaign(path, fast_refits=True, refit_every=2, n_rounds=4)
        summary = summarize_trace(read_trace(path))
        counters = summary["metrics"]["counters"]
        # The seed succeeds, so every round advances the model: with
        # refit_every=2 full refits and incremental updates alternate and
        # must add up to n_rounds.
        assert counters["campaign.fit.full"] >= 1
        assert counters["campaign.fit.incremental"] >= 1
        assert (
            counters["campaign.fit.full"] + counters["campaign.fit.incremental"]
            == 4
        )
        # Each incremental advance folds points in via rank-1 update().
        assert counters["gp.update.total"] >= counters["campaign.fit.incremental"]
        assert counters["quarantine.inspected"] >= counters["quarantine.accepted"]
        assert "scheduler.jobs.completed" in counters

    def test_summary_replays_fit_timings_and_rounds(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        _tiny_campaign(path)
        summary = summarize_trace(read_trace(path))
        assert summary["fits"], "per-fit timings missing"
        assert all(f["elapsed"] >= 0 for f in summary["fits"])
        assert all("lml_spread" in f for f in summary["fits"])
        assert [r["round"] for r in summary["rounds"]] == [0, 1, 2]
        hist = summary["metrics"]["histograms"]
        assert hist["gp.fit.seconds"]["count"] == len(summary["fits"])
        assert "scheduler.node_utilization" in hist


class TestInstrumentedLearner:
    def test_learner_iteration_events(self, tmp_path):
        from repro.al.learner import ActiveLearner, default_model_factory
        from repro.al.partition import random_partition
        from repro.al.strategies import VarianceReduction

        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(30, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] + 0.05 * rng.normal(size=30)
        costs = np.ones(30)
        partition = random_partition(30, 1, n_initial=8)
        path = tmp_path / "learner.jsonl"
        with telemetry.session(path):
            learner = ActiveLearner(
                X, y, costs, partition,
                VarianceReduction(),
                model_factory=default_model_factory(),
            )
            learner.run(3)
        events = read_trace(path)
        assert validate_trace(events) == []
        iterations = [
            e for e in events
            if e["ev"] == "point" and e["name"] == "al.iteration"
        ]
        assert [e["iteration"] for e in iterations] == [0, 1, 2]
        for e in iterations:
            for key in ("rmse", "amsd", "nlpd", "lml", "cumulative_cost"):
                assert key in e
