"""Tests for trace validation, summarization and the telemetry CLI."""

import json

import pytest

from repro.telemetry import TraceWriter
from repro.telemetry.cli import main as telemetry_main
from repro.telemetry.summarize import (
    read_trace,
    render_summary,
    summarize_trace,
    validate_trace,
)


def _write_trace(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


class TestReadTrace:
    def test_reads_events_and_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ev": "point", "t": 0, "span": null, "name": "a"}\n\n')
        assert len(read_trace(path)) == 1

    def test_reports_line_number_on_bad_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ev": "metrics", "t": 0, "metrics": {}}\n{torn')
        with pytest.raises(ValueError, match=":2:"):
            read_trace(path)

    def test_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_trace(path)


class TestValidate:
    def test_valid_nested_trace(self):
        events = [
            {"ev": "span_start", "t": 0.0, "span": 0, "parent": None, "name": "a"},
            {"ev": "span_start", "t": 0.1, "span": 1, "parent": 0, "name": "b"},
            {"ev": "point", "t": 0.2, "span": 1, "name": "p"},
            {"ev": "span_end", "t": 0.3, "span": 1, "name": "b", "elapsed": 0.2},
            {"ev": "span_end", "t": 0.4, "span": 0, "name": "a", "elapsed": 0.4},
            {"ev": "metrics", "t": 0.5, "metrics": {}},
        ]
        assert validate_trace(events) == []

    def test_unknown_kind(self):
        errors = validate_trace([{"ev": "bogus", "t": 0.0}])
        assert any("unknown ev kind" in e for e in errors)

    def test_missing_required_key(self):
        errors = validate_trace(
            [{"ev": "span_start", "t": 0.0, "span": 0, "name": "a"}]
        )
        assert any("missing required key 'parent'" in e for e in errors)

    def test_backwards_timestamp(self):
        errors = validate_trace(
            [
                {"ev": "point", "t": 1.0, "span": None, "name": "a"},
                {"ev": "point", "t": 0.5, "span": None, "name": "b"},
            ]
        )
        assert any("goes backwards" in e for e in errors)

    def test_unclosed_span(self):
        errors = validate_trace(
            [{"ev": "span_start", "t": 0.0, "span": 0, "parent": None, "name": "a"}]
        )
        assert any("never closed" in e for e in errors)

    def test_span_end_without_start(self):
        errors = validate_trace(
            [{"ev": "span_end", "t": 0.0, "span": 9, "name": "a", "elapsed": 0.0}]
        )
        assert any("without an open span_start" in e for e in errors)

    def test_reused_span_id_and_bad_parent(self):
        events = [
            {"ev": "span_start", "t": 0.0, "span": 0, "parent": None, "name": "a"},
            {"ev": "span_end", "t": 0.1, "span": 0, "name": "a", "elapsed": 0.1},
            {"ev": "span_start", "t": 0.2, "span": 0, "parent": None, "name": "b"},
            {"ev": "span_start", "t": 0.3, "span": 1, "parent": 7, "name": "c"},
        ]
        errors = validate_trace(events)
        assert any("reused" in e for e in errors)
        assert any("not an open span" in e for e in errors)

    def test_name_mismatch(self):
        events = [
            {"ev": "span_start", "t": 0.0, "span": 0, "parent": None, "name": "a"},
            {"ev": "span_end", "t": 0.1, "span": 0, "name": "z", "elapsed": 0.1},
        ]
        errors = validate_trace(events)
        assert any("started as 'a' but ended as 'z'" in e for e in errors)


class TestSummarize:
    def _fit_trace(self):
        # One fit with two restarts (objective = -LML), one rank-1 update.
        return [
            {"ev": "span_start", "t": 0.0, "span": 0, "parent": None,
             "name": "fit", "n": 10, "warm_start": False},
            {"ev": "span_start", "t": 0.0, "span": 1, "parent": 0,
             "name": "restart", "index": 0},
            {"ev": "span_end", "t": 0.1, "span": 1, "name": "restart",
             "elapsed": 0.1, "value": -5.0, "status": "ok"},
            {"ev": "span_start", "t": 0.1, "span": 2, "parent": 0,
             "name": "restart", "index": 1},
            {"ev": "span_end", "t": 0.2, "span": 2, "name": "restart",
             "elapsed": 0.1, "value": -3.0, "status": "failed"},
            {"ev": "span_end", "t": 0.2, "span": 0, "name": "fit",
             "elapsed": 0.2, "lml": 5.0},
            {"ev": "span_start", "t": 0.3, "span": 3, "parent": None,
             "name": "update", "n": 10, "n_new": 2},
            {"ev": "span_end", "t": 0.31, "span": 3, "name": "update",
             "elapsed": 0.01, "n_rebuilds": 0},
            {"ev": "metrics", "t": 0.4,
             "metrics": {"counters": {"gp.fit.total": 1},
                         "gauges": {"al.pool_size": 3.0},
                         "histograms": {}}},
        ]

    def test_fit_and_update_aggregation(self):
        s = summarize_trace(self._fit_trace())
        assert s["n_events"] == 9
        assert s["duration"] == 0.4
        (fit,) = s["fits"]
        assert fit["n"] == 10
        assert fit["lml"] == 5.0
        assert fit["n_starts"] == 2
        assert fit["n_bad_starts"] == 1
        assert fit["lml_spread"] == pytest.approx(2.0)
        (update,) = s["updates"]
        assert update["n_new"] == 2
        assert s["metrics"]["counters"]["gp.fit.total"] == 1
        assert s["span_stats"]["restart"]["count"] == 2

    def test_render_mentions_key_sections(self):
        text = render_summary(summarize_trace(self._fit_trace()))
        assert "1 full fit(s), 1 rank-1 update(s)" in text
        assert "restart LML spread" in text
        assert "gp.fit.total" in text
        assert "al.pool_size" in text


class TestCli:
    def _valid_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path)
        with w.span("fit", n=4):
            pass
        w.metrics({"counters": {"gp.fit.total": 1}, "gauges": {}, "histograms": {}})
        w.close()
        return path

    def test_summarize_ok(self, tmp_path, capsys):
        path = self._valid_trace(tmp_path)
        assert telemetry_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "full fit(s)" in out

    def test_summarize_json(self, tmp_path, capsys):
        path = self._valid_trace(tmp_path)
        assert telemetry_main(["summarize", "--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] == 3

    def test_validate_ok(self, tmp_path, capsys):
        path = self._valid_trace(tmp_path)
        assert telemetry_main(["validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_flags_bad_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        _write_trace(
            path,
            [{"ev": "span_start", "t": 0.0, "span": 0, "parent": None,
              "name": "a"}],
        )
        assert telemetry_main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out
