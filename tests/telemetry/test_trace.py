"""Unit tests for the JSONL trace writer and span nesting."""

import json

import numpy as np
import pytest

from repro.telemetry import TraceWriter
from repro.telemetry.summarize import read_trace


def _events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSpans:
    def test_nesting_records_parent_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path)
        with w.span("campaign") as outer:
            with w.span("round") as inner:
                pass
        w.close()
        ev = _events(path)
        starts = {e["name"]: e for e in ev if e["ev"] == "span_start"}
        assert starts["campaign"]["parent"] is None
        assert starts["round"]["parent"] == starts["campaign"]["span"]
        assert outer.span_id != inner.span_id

    def test_set_fields_land_on_span_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path)
        with w.span("fit", n=10) as sp:
            sp.set(lml=-3.5)
        w.close()
        ev = _events(path)
        start, end = ev[0], ev[1]
        assert start["n"] == 10
        assert end["lml"] == -3.5
        assert end["elapsed"] >= 0.0

    def test_exception_marks_span_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path)
        with pytest.raises(RuntimeError, match="boom"):
            with w.span("fit"):
                raise RuntimeError("boom")
        w.close()
        end = _events(path)[-1]
        assert end["ev"] == "span_end"
        assert end["error"] == "RuntimeError"

    def test_out_of_order_end_raises(self, tmp_path):
        w = TraceWriter(tmp_path / "t.jsonl")
        outer = w.span("outer")
        w.span("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            w._end_span(outer)

    def test_point_event_attributed_to_open_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path)
        w.event("outside")
        with w.span("round") as sp:
            w.event("inside", value=1)
        w.close()
        points = [e for e in _events(path) if e["ev"] == "point"]
        assert points[0]["span"] is None
        assert points[1]["span"] == sp.span_id
        assert points[1]["value"] == 1


class TestWriter:
    def test_round_trip_and_monotonic_time(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ticks = iter(float(i) for i in range(100))
        w = TraceWriter(path, clock=lambda: next(ticks))
        with w.span("a"):
            w.event("p")
        w.metrics({"counters": {}, "gauges": {}, "histograms": {}})
        w.close()
        ev = read_trace(path)
        assert [e["ev"] for e in ev] == ["span_start", "point", "span_end", "metrics"]
        ts = [e["t"] for e in ev]
        assert ts == sorted(ts)
        assert ts[0] == 1.0  # injectable clock: first tick after t0

    def test_flush_every_keeps_file_current(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path, flush_every=2)
        w.event("one")
        assert not path.exists()  # still buffered
        w.event("two")
        assert len(_events(path)) == 2  # auto-flushed, atomically
        w.close()

    def test_numpy_values_serialize(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path)
        w.event("np", scalar=np.float64(1.5), vector=np.arange(3))
        w.close()
        ev = _events(path)[0]
        assert ev["scalar"] == 1.5
        assert ev["vector"] == [0, 1, 2]

    def test_closed_writer_rejects_events(self, tmp_path):
        w = TraceWriter(tmp_path / "t.jsonl")
        w.close()
        with pytest.raises(RuntimeError, match="closed"):
            w.event("late")

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            TraceWriter(tmp_path / "t.jsonl", flush_every=0)

    def test_n_events(self, tmp_path):
        w = TraceWriter(tmp_path / "t.jsonl")
        assert w.n_events == 0
        w.event("a")
        w.event("b")
        assert w.n_events == 2
        w.close()
