"""Unit tests for the telemetry metric instruments."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, Registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("fits")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("fits")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_starts_unset_and_overwrites(self):
        g = Gauge("pool")
        assert g.value is None
        g.set(12)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram("seconds")
        assert h.count == 0
        assert h.min is None and h.max is None and h.mean is None
        assert h.percentile(50) is None
        assert h.summary()["count"] == 0

    def test_statistics(self):
        h = Histogram("seconds")
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        assert h.count == 3
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0
        assert h.percentile(50) == 2.0

    def test_percentile_validates_range(self):
        h = Histogram("seconds")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_shape(self):
        h = Histogram("seconds")
        h.observe(2.0)
        s = h.summary()
        assert set(s) == {"count", "total", "min", "mean", "p50", "p90", "max"}
        assert s["count"] == 1
        assert s["total"] == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = Registry()
        reg.counter("n").inc(3)
        reg.gauge("level").set(0.5)
        reg.histogram("dist").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"n": 3}
        assert snap["gauges"] == {"level": 0.5}
        assert snap["histograms"]["dist"]["count"] == 1

    def test_reset_drops_instruments(self):
        reg = Registry()
        reg.counter("n").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("n").value == 0


class TestConcurrency:
    def test_hammered_counter_loses_no_updates(self):
        """N threads x M increments must land exactly N*M — the lost-update
        race this registry's locking exists to prevent."""
        import threading

        reg = Registry()
        n_threads, n_incs = 8, 2000

        def hammer():
            c = reg.counter("hits")
            h = reg.histogram("lat")
            for i in range(n_incs):
                c.inc()
                h.observe(float(i % 7))

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == n_threads * n_incs
        assert snap["histograms"]["lat"]["count"] == n_threads * n_incs

    def test_snapshot_never_torn_under_writes(self):
        """Summaries read mid-hammer must be internally consistent."""
        import threading

        reg = Registry()
        stop = threading.Event()

        def writer():
            h = reg.histogram("v")
            c = reg.counter("n")
            while not stop.is_set():
                h.observe(1.0)
                c.inc()

        ws = [threading.Thread(target=writer) for _ in range(4)]
        for w in ws:
            w.start()
        try:
            for _ in range(200):
                s = reg.snapshot()["histograms"].get("v")
                if s is None or s["count"] == 0:
                    continue
                # total is count * 1.0 exactly iff count/total are read
                # under one lock hold; a torn read breaks the identity.
                assert s["total"] == s["count"] * 1.0
                assert s["min"] == s["max"] == 1.0
                assert s["mean"] == 1.0
        finally:
            stop.set()
            for w in ws:
                w.join()

    def test_instrument_creation_race(self):
        """Concurrent get-or-create returns one shared instrument."""
        import threading

        reg = Registry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(reg.counter("one"))

        ts = [threading.Thread(target=create) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestDumpMerge:
    def test_roundtrip(self):
        src = Registry()
        src.counter("jobs").inc(3)
        src.gauge("temp").set(41.5)
        src.histogram("ms").observe(1.0)
        src.histogram("ms").observe(9.0)

        dst = Registry()
        dst.counter("jobs").inc(2)
        dst.merge(src.dump())
        snap = dst.snapshot()
        assert snap["counters"]["jobs"] == 5
        assert snap["gauges"]["temp"] == 41.5
        assert snap["histograms"]["ms"]["count"] == 2
        assert snap["histograms"]["ms"]["total"] == 10.0

    def test_dump_preserves_raw_observations(self):
        """dump() ships observations, not summaries, so percentiles of the
        merged registry equal percentiles of a single-process run."""
        a, b, whole = Registry(), Registry(), Registry()
        for v in range(0, 50):
            a.histogram("x").observe(float(v))
            whole.histogram("x").observe(float(v))
        for v in range(50, 100):
            b.histogram("x").observe(float(v))
            whole.histogram("x").observe(float(v))
        merged = Registry()
        merged.merge(a.dump())
        merged.merge(b.dump())
        assert (
            merged.histogram("x").percentile(90)
            == whole.histogram("x").percentile(90)
        )

    def test_unset_gauge_does_not_clobber(self):
        dst = Registry()
        dst.gauge("g").set(7.0)
        src = Registry()
        src.gauge("g")  # created but never set
        dst.merge(src.dump())
        assert dst.snapshot()["gauges"]["g"] == 7.0

    def test_merge_empty_dump(self):
        reg = Registry()
        reg.counter("c").inc()
        reg.merge({})
        assert reg.snapshot()["counters"]["c"] == 1

    def test_merge_order_determines_gauge(self):
        """Gauges are last-write-wins in merge (i.e. task input) order."""
        first, second = Registry(), Registry()
        first.gauge("g").set(1.0)
        second.gauge("g").set(2.0)
        dst = Registry()
        dst.merge(first.dump())
        dst.merge(second.dump())
        assert dst.snapshot()["gauges"]["g"] == 2.0
