"""Unit tests for the telemetry metric instruments."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, Registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("fits")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("fits")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_starts_unset_and_overwrites(self):
        g = Gauge("pool")
        assert g.value is None
        g.set(12)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram("seconds")
        assert h.count == 0
        assert h.min is None and h.max is None and h.mean is None
        assert h.percentile(50) is None
        assert h.summary()["count"] == 0

    def test_statistics(self):
        h = Histogram("seconds")
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        assert h.count == 3
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0
        assert h.percentile(50) == 2.0

    def test_percentile_validates_range(self):
        h = Histogram("seconds")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_shape(self):
        h = Histogram("seconds")
        h.observe(2.0)
        s = h.summary()
        assert set(s) == {"count", "total", "min", "mean", "p50", "p90", "max"}
        assert s["count"] == 1
        assert s["total"] == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = Registry()
        reg.counter("n").inc(3)
        reg.gauge("level").set(0.5)
        reg.histogram("dist").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"n": 3}
        assert snap["gauges"] == {"level": 0.5}
        assert snap["histograms"]["dist"]["count"] == 1

    def test_reset_drops_instruments(self):
        reg = Registry()
        reg.counter("n").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("n").value == 0
