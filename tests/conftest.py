"""Shared fixtures.

The paper-scale Performance dataset costs ~20 s to generate; the
``repro.experiments.common`` accessors are process-cached, so the fixtures
here simply delegate to them and the cost is paid once per pytest session.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def performance_dataset():
    from repro.experiments.common import performance_dataset as _get

    return _get()


@pytest.fixture(scope="session")
def power_dataset():
    from repro.experiments.common import power_dataset as _get

    return _get()


@pytest.fixture(scope="session")
def fig6_data():
    """(X, y, costs) of the paper's 251-job AL evaluation subset."""
    from repro.experiments.common import fig6_subset

    return fig6_subset()


@pytest.fixture(scope="session")
def small_1d_problem():
    """A small noisy 1-D regression problem with known structure."""
    rng = np.random.default_rng(7)
    X = np.sort(rng.uniform(0, 10, size=30))[:, np.newaxis]
    y = np.sin(X[:, 0]) + 0.1 * rng.standard_normal(30)
    return X, y
