"""Tests for the discrete-event SLURM-like scheduler."""

import numpy as np
import pytest

from repro.cluster import (
    ExecutionOutcome,
    IPMISampler,
    JobSpec,
    PowerModel,
    SlurmSimulator,
    wisconsin_cluster,
)


class FixedExecutor:
    """Deterministic executor: runtime keyed off the spec's problem size."""

    def estimate(self, spec):
        return spec.problem_size  # abuse: problem_size stores seconds

    def execute(self, spec, rng):
        return ExecutionOutcome(runtime_seconds=spec.problem_size)


def _spec(seconds, ranks, rep=0):
    return JobSpec("poisson1", float(seconds), ranks, 2.4, repeat_index=rep)


def _sim(**kw):
    return SlurmSimulator(wisconsin_cluster(), FixedExecutor(), rng=0, **kw)


def test_single_job_runs_immediately():
    records = _sim().run_batch([_spec(10.0, 32)])
    assert len(records) == 1
    r = records[0]
    assert r.start_time == 0.0
    assert r.runtime_seconds == pytest.approx(10.0)
    assert r.n_nodes == 1
    assert r.state == "COMPLETED"


def test_capacity_never_exceeded():
    """At any instant, concurrently running jobs fit in 4 nodes."""
    specs = [_spec(5.0 + i, ranks, i) for i, ranks in enumerate(
        [128, 64, 64, 32, 32, 32, 32, 128, 96, 16] * 3)]
    records = _sim().run_batch(specs)
    events = []
    for r in records:
        events.append((r.start_time, r.n_nodes))
        events.append((r.end_time, -r.n_nodes))
    in_use = 0
    # Process releases before acquisitions at tie timestamps.
    for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
        in_use += delta
        assert in_use <= 4


def test_no_node_double_booking():
    specs = [_spec(7.0, 64, i) for i in range(6)]
    records = _sim().run_batch(specs)
    # 6 jobs x 2 nodes on 4 nodes: at most 2 concurrent.
    intervals = {}
    for r in records:
        for node in r.node_list.split(","):
            intervals.setdefault(node, []).append((r.start_time, r.end_time))
    for node, spans in intervals.items():
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9, f"{node} double-booked"


def test_fifo_order_without_backfill_opportunity():
    """Equal-size jobs must start in submission order."""
    specs = [_spec(3.0, 128, i) for i in range(4)]
    records = _sim().run_batch(specs)
    records.sort(key=lambda r: r.job_id)
    starts = [r.start_time for r in records]
    assert starts == sorted(starts)
    np.testing.assert_allclose(np.diff(starts), 3.0, atol=1e-9)


def test_backfill_fills_holes_without_delaying_head():
    """A short small job may jump a blocked wide job iff it fits the shadow."""
    specs = [
        _spec(100.0, 64, 0),   # occupies 2 nodes
        _spec(100.0, 128, 1),  # blocked: needs all 4 nodes
        _spec(5.0, 32, 2),     # short: backfills into a free node
    ]
    records = {r.repeat_index: r for r in _sim().run_batch(specs)}
    assert records[2].start_time < records[1].start_time  # backfilled
    assert records[1].start_time == pytest.approx(100.0)  # head not delayed


def test_long_backfill_candidate_not_started():
    """A long narrow job must NOT backfill if it would delay the wide head."""
    specs = [
        _spec(100.0, 64, 0),
        _spec(100.0, 128, 1),
        _spec(500.0, 96, 2),  # needs 3 nodes; only 2 free -> cannot start anyway
        _spec(500.0, 32, 3),  # 1 node free slot, but 500s > shadow of 100s
    ]
    records = {r.repeat_index: r for r in _sim().run_batch(specs)}
    assert records[3].start_time >= records[1].start_time


def test_wait_times_recorded():
    specs = [_spec(10.0, 128, 0), _spec(10.0, 128, 1)]
    records = {r.repeat_index: r for r in _sim().run_batch(specs)}
    assert records[0].wait_seconds == pytest.approx(0.0)
    assert records[1].wait_seconds == pytest.approx(10.0)


def test_time_limit_truncates():
    sim = _sim(time_limit_seconds=5.0)
    records = sim.run_batch([_spec(100.0, 32)])
    r = records[0]
    assert r.state == "TIMEOUT"
    assert r.runtime_seconds == pytest.approx(5.0)
    assert r.exit_code == 1


def test_power_accounting_fields():
    sim = SlurmSimulator(
        wisconsin_cluster(),
        FixedExecutor(),
        power_model=PowerModel(),
        sampler=IPMISampler(gap_rate_per_minute=0.0),
        rng=0,
    )
    records = sim.run_batch([_spec(60.0, 64)])
    r = records[0]
    assert r.energy_joules is not None
    assert r.energy_usable
    assert r.power_records > 100  # 2 nodes x 61 samples
    assert r.mean_power_watts == pytest.approx(r.energy_joules / 60.0, rel=1e-6)
    # Two busy nodes at 2.4 GHz: several hundred Watts.
    assert 300 < r.mean_power_watts < 700


def test_no_power_model_gives_none():
    records = _sim().run_batch([_spec(60.0, 32)])
    r = records[0]
    assert r.energy_joules is None
    assert not r.energy_usable
    assert r.power_records == 0


def test_power_model_and_sampler_must_pair():
    with pytest.raises(ValueError):
        SlurmSimulator(wisconsin_cluster(), FixedExecutor(), power_model=PowerModel())


def test_submit_spacing():
    records = _sim().run_batch(
        [_spec(1.0, 32, 0), _spec(1.0, 32, 1)], submit_spacing_s=50.0
    )
    records.sort(key=lambda r: r.job_id)
    assert records[0].submit_time == 0.0
    assert records[1].submit_time == 50.0
    assert records[1].start_time >= 50.0


def test_per_node_utilization_fields():
    records = _sim().run_batch([_spec(5.0, 48)])
    r = records[0]
    assert r.n_nodes == 2
    assert r.avg_cpu_util_node0 == pytest.approx(1.0)  # 32 of 32 threads
    assert r.avg_cpu_util_node1 == pytest.approx(0.5)  # 16 of 32 threads
    assert r.avg_cpu_util_node2 == 0.0


def test_all_records_returned_once():
    specs = [_spec(2.0 + i * 0.1, 32, i) for i in range(20)]
    records = _sim().run_batch(specs)
    assert len(records) == 20
    assert len({r.job_id for r in records}) == 20


def test_sjf_policy_reduces_mean_wait():
    """Shortest-job-first: short jobs jump the queue, mean wait drops."""
    specs = [_spec(t, 128, i) for i, t in enumerate([50.0, 5.0, 20.0])]
    fifo = _sim(policy="fifo").run_batch(specs)
    sjf = _sim(policy="sjf").run_batch(specs)
    mean_wait = lambda rs: sum(r.wait_seconds for r in rs) / len(rs)
    assert mean_wait(sjf) < mean_wait(fifo)
    # SJF starts jobs in estimated-runtime order.
    order = [r.problem_size for r in sorted(sjf, key=lambda r: r.start_time)]
    assert order == sorted(order)


def test_unknown_policy_rejected():
    import pytest as _pytest

    with _pytest.raises(ValueError, match="policy"):
        _sim(policy="fairshare")
