"""Tests for the power model and IPMI trace sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import IPMISampler, PowerModel, PowerTrace


def test_idle_power():
    pm = PowerModel()
    assert float(pm.node_power(0, 2.4)) == pytest.approx(pm.idle_watts)


def test_power_increases_with_load_and_frequency():
    pm = PowerModel()
    assert pm.node_power(8, 2.4) > pm.node_power(4, 2.4)
    assert pm.node_power(8, 2.4) > pm.node_power(8, 1.2)


def test_frequency_scaling_exponent():
    pm = PowerModel()
    dyn_hi = float(pm.node_power(16, 2.4)) - pm.idle_watts
    dyn_lo = float(pm.node_power(16, 1.2)) - pm.idle_watts
    assert dyn_hi / dyn_lo == pytest.approx(2.0**pm.freq_exponent, rel=1e-9)


def test_smt_ranks_cost_less():
    pm = PowerModel()
    base = float(pm.node_power(16, 2.4)) - float(pm.node_power(15, 2.4))
    smt = float(pm.node_power(17, 2.4)) - float(pm.node_power(16, 2.4))
    assert smt < base
    assert smt == pytest.approx(base * pm.smt_power_fraction, rel=1e-9)


def test_full_node_power_realistic():
    """A fully loaded Wisconsin node draws ~200-300 W."""
    from repro.cluster import NodeSpec

    pm = PowerModel()
    watts = pm.full_node_power(NodeSpec(), 2.4)
    assert 200 < watts < 320


def test_power_model_validation():
    pm = PowerModel()
    with pytest.raises(ValueError):
        pm.node_power(-1, 2.4)
    with pytest.raises(ValueError):
        pm.node_power(4, 0.0)
    with pytest.raises(ValueError):
        pm.node_power(4, 2.4, utilization=1.5)
    with pytest.raises(ValueError):
        PowerModel(idle_watts=-1.0)
    with pytest.raises(ValueError):
        PowerModel(base_freq_ghz=0.0)


def test_trace_validation():
    with pytest.raises(ValueError):
        PowerTrace(times=np.array([0.0, 1.0]), watts=np.array([1.0]))
    with pytest.raises(ValueError):
        PowerTrace(times=np.array([1.0, 0.5]), watts=np.array([1.0, 2.0]))
    t = PowerTrace(times=np.array([0.0, 1.0]), watts=np.array([100.0, 101.0]))
    assert t.n_records == 2


def test_sampler_produces_plausible_trace():
    sampler = IPMISampler(gap_rate_per_minute=0.0, timestamp_jitter_s=0.0)
    rng = np.random.default_rng(0)
    trace = sampler.sample(60.0, 200.0, rng)
    assert trace.n_records == 61
    assert np.all(trace.watts >= 0)
    # Quantized to whole Watts.
    np.testing.assert_allclose(trace.watts, np.rint(trace.watts))
    assert abs(trace.watts.mean() - 200.0) < 5.0


def test_sampler_gaps_remove_records():
    rng_seed = 5
    no_gaps = IPMISampler(gap_rate_per_minute=0.0).sample(
        300.0, 200.0, np.random.default_rng(rng_seed)
    )
    gappy = IPMISampler(gap_rate_per_minute=5.0, mean_gap_s=20.0).sample(
        300.0, 200.0, np.random.default_rng(rng_seed)
    )
    assert gappy.n_records < no_gaps.n_records


def test_sampler_timestamps_strictly_increasing():
    sampler = IPMISampler(timestamp_jitter_s=0.5)
    rng = np.random.default_rng(1)
    for _ in range(5):
        trace = sampler.sample(30.0, 150.0, rng)
        if trace.n_records > 1:
            assert np.all(np.diff(trace.times) > 0)


def test_sampler_zero_duration():
    trace = IPMISampler().sample(0.0, 100.0, np.random.default_rng(0))
    assert trace.n_records >= 0  # a single instantaneous reading may survive


def test_sampler_validation():
    with pytest.raises(ValueError):
        IPMISampler(period_s=0.0)
    with pytest.raises(ValueError):
        IPMISampler(mean_gap_s=0.0)
    with pytest.raises(ValueError):
        IPMISampler().sample(-1.0, 100.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        IPMISampler().sample(10.0, -5.0, np.random.default_rng(0))


@given(duration=st.floats(1.0, 600.0), watts=st.floats(50.0, 400.0))
@settings(max_examples=25, deadline=None)
def test_property_trace_bounds(duration, watts):
    """Readings stay within noise bounds of the mean; counts match period."""
    sampler = IPMISampler(gap_rate_per_minute=0.0)
    rng = np.random.default_rng(0)
    trace = sampler.sample(duration, watts, rng)
    assert trace.n_records == int(duration / sampler.period_s) + 1
    assert np.all(np.abs(trace.watts - watts) < 8 * sampler.reading_noise_watts + 1)
