"""Tests for the seeded fault-injection executor wrapper."""

import numpy as np
import pytest

from repro.cluster import (
    FaultConfig,
    FaultyExecutor,
    JobSpec,
    SlurmSimulator,
    wisconsin_cluster,
)
from repro.datasets.generate import ModelExecutor


def _spec(i=0, size=96**3):
    return JobSpec("poisson1", float(size), 32, 2.4, repeat_index=i)


def test_config_validation():
    with pytest.raises(ValueError):
        FaultConfig(crash_rate=-0.1)
    with pytest.raises(ValueError):
        FaultConfig(crash_rate=0.6, hang_rate=0.6)
    with pytest.raises(ValueError):
        FaultConfig(crash_runtime_fraction=0.0)
    with pytest.raises(ValueError):
        FaultConfig(straggler_factor=0.5)
    with pytest.raises(ValueError):
        FaultConfig(corrupt_runtime_factor=0.0)
    assert FaultConfig(crash_rate=0.1, corrupt_rate=0.1).total_rate == pytest.approx(0.2)


def test_no_faults_is_transparent():
    """With zero rates the wrapper reproduces the inner executor exactly."""
    plain = ModelExecutor()
    wrapped = FaultyExecutor(ModelExecutor(), FaultConfig(), rng=0)
    spec = _spec()
    assert wrapped.estimate(spec) == plain.estimate(spec)
    out_plain = plain.execute(spec, np.random.default_rng(5))
    out_wrapped = wrapped.execute(spec, np.random.default_rng(5))
    assert out_wrapped == out_plain
    assert wrapped.stats.n_jobs == 1
    assert wrapped.stats.n_faults == 0


def test_crash_truncates_and_fails():
    ex = FaultyExecutor(
        ModelExecutor(), FaultConfig(crash_rate=1.0, crash_runtime_fraction=0.25),
        rng=0,
    )
    clean = ModelExecutor().execute(_spec(), np.random.default_rng(3))
    out = ex.execute(_spec(), np.random.default_rng(3))
    assert out.failed
    assert not out.verification_passed
    assert out.runtime_seconds == pytest.approx(0.25 * clean.runtime_seconds)
    assert ex.stats.n_crashes == 1


def test_hang_inflates_past_time_limit():
    ex = FaultyExecutor(
        ModelExecutor(), FaultConfig(hang_rate=1.0, hang_runtime_seconds=7200.0),
        rng=0,
    )
    out = ex.execute(_spec(), np.random.default_rng(3))
    assert out.runtime_seconds >= 7200.0
    assert not out.failed  # the scheduler's time limit turns it into TIMEOUT
    sim = SlurmSimulator(
        wisconsin_cluster(), ex, rng=0, time_limit_seconds=3600.0
    )
    records = sim.run_batch([_spec()])
    assert records[0].state == "TIMEOUT"
    assert records[0].exit_code == 1
    assert records[0].runtime_seconds == pytest.approx(3600.0)


def test_straggler_slows_but_completes():
    ex = FaultyExecutor(
        ModelExecutor(), FaultConfig(straggler_rate=1.0, straggler_factor=3.0),
        rng=0,
    )
    clean = ModelExecutor().execute(_spec(), np.random.default_rng(3))
    out = ex.execute(_spec(), np.random.default_rng(3))
    assert out.runtime_seconds == pytest.approx(3.0 * clean.runtime_seconds)
    assert not out.failed
    assert out.verification_passed


def test_corrupt_biases_and_flags():
    ex = FaultyExecutor(
        ModelExecutor(),
        FaultConfig(corrupt_rate=1.0, corrupt_runtime_factor=0.5),
        rng=0,
    )
    clean = ModelExecutor().execute(_spec(), np.random.default_rng(3))
    out = ex.execute(_spec(), np.random.default_rng(3))
    assert out.runtime_seconds == pytest.approx(0.5 * clean.runtime_seconds)
    assert not out.failed
    assert not out.verification_passed


def test_dedicated_rng_is_reproducible():
    def run(seed):
        ex = FaultyExecutor(
            ModelExecutor(), FaultConfig(crash_rate=0.3), rng=seed
        )
        kinds = []
        for i in range(40):
            out = ex.execute(_spec(i), np.random.default_rng(i))
            kinds.append(out.failed)
        return kinds, ex.stats

    kinds_a, stats_a = run(42)
    kinds_b, stats_b = run(42)
    assert kinds_a == kinds_b
    assert stats_a == stats_b
    assert 0 < stats_a.n_crashes < 40  # the rate actually bites


def test_injection_rate_roughly_matches_config():
    ex = FaultyExecutor(
        ModelExecutor(),
        FaultConfig(crash_rate=0.1, hang_rate=0.1, corrupt_rate=0.1),
        rng=7,
    )
    rng = np.random.default_rng(0)
    for i in range(300):
        ex.execute(_spec(i), rng)
    assert ex.stats.n_jobs == 300
    # 30% expected; a loose band avoids flakiness while catching off-by-10x.
    assert 50 <= ex.stats.n_faults <= 140


def test_scheduler_stream_mode_follows_scheduler_seed():
    """With rng=None the fault pattern is a function of the scheduler seed."""

    def states(seed):
        ex = FaultyExecutor(ModelExecutor(), FaultConfig(crash_rate=0.4))
        sim = SlurmSimulator(wisconsin_cluster(), ex, rng=seed)
        records = sim.run_batch([_spec(i) for i in range(12)])
        return sorted((r.repeat_index, r.state) for r in records)

    assert states(3) == states(3)
    assert states(3) != states(4)
