"""Tests for energy integration and the trace-quality rule."""

import numpy as np
import pytest

from repro.cluster import (
    MIN_RECORDS_PER_MINUTE,
    PowerTrace,
    integrate_energy,
    records_per_minute,
    trace_is_usable,
)


def _trace(times, watts):
    return PowerTrace(times=np.asarray(times, float), watts=np.asarray(watts, float))


def test_constant_power_exact():
    trace = _trace(np.arange(0.0, 11.0), np.full(11, 200.0))
    assert integrate_energy(trace, 10.0) == pytest.approx(2000.0)


def test_linear_power_trapezoid_exact():
    t = np.linspace(0, 10, 11)
    trace = _trace(t, 100.0 + 10.0 * t)
    # integral of 100 + 10t over [0,10] = 1000 + 500
    assert integrate_energy(trace, 10.0) == pytest.approx(1500.0)


def test_boundary_hold_extension():
    """Samples not reaching the job boundaries are extended (ZOH)."""
    trace = _trace([2.0, 8.0], [100.0, 100.0])
    assert integrate_energy(trace, 10.0) == pytest.approx(1000.0)


def test_samples_beyond_duration_clipped():
    trace = _trace([0.0, 5.0, 50.0], [100.0, 100.0, 100.0])
    assert integrate_energy(trace, 10.0) == pytest.approx(1000.0)


def test_single_sample_zoh():
    trace = _trace([3.0], [150.0])
    assert integrate_energy(trace, 10.0) == pytest.approx(1500.0)


def test_empty_trace_rejected():
    trace = _trace([0.0], [100.0])
    with pytest.raises(ValueError):
        integrate_energy(
            PowerTrace(times=np.empty(0), watts=np.empty(0)), 10.0
        )
    with pytest.raises(ValueError):
        integrate_energy(trace, -1.0)
    assert integrate_energy(trace, 0.0) == 0.0


def test_records_per_minute():
    trace = _trace(np.arange(0.0, 60.0), np.full(60, 100.0))
    assert records_per_minute(trace, 60.0) == pytest.approx(60.0)
    assert records_per_minute(trace, 120.0) == pytest.approx(30.0)
    assert records_per_minute(trace, 0.0) == np.inf


def test_usability_rule_matches_paper():
    """'less than 10 [records] for 60 seconds of computation' is excluded."""
    assert MIN_RECORDS_PER_MINUTE == 10.0
    dense = _trace(np.arange(0.0, 60.0, 5.0), np.full(12, 100.0))  # 12/min
    sparse = _trace(np.arange(0.0, 60.0, 8.0), np.full(8, 100.0))  # 8/min
    assert trace_is_usable(dense, 60.0)
    assert not trace_is_usable(sparse, 60.0)
    assert not trace_is_usable(PowerTrace(times=np.empty(0), watts=np.empty(0)), 60.0)


def test_usability_custom_threshold():
    trace = _trace(np.arange(0.0, 60.0, 8.0), np.full(8, 100.0))
    assert trace_is_usable(trace, 60.0, min_records_per_minute=5.0)
