"""Property-based tests for the scheduler: invariants over random job mixes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ExecutionOutcome,
    JobSpec,
    SlurmSimulator,
    wisconsin_cluster,
)


class _Exec:
    def estimate(self, spec):
        return spec.problem_size

    def execute(self, spec, rng):
        return ExecutionOutcome(runtime_seconds=spec.problem_size)


job_strategy = st.tuples(
    st.floats(0.5, 30.0),  # runtime seconds (stored in problem_size)
    st.sampled_from([1, 2, 8, 16, 32, 48, 64, 96, 128]),
)


@given(jobs=st.lists(job_strategy, min_size=1, max_size=25))
@settings(max_examples=30, deadline=None)
def test_property_scheduler_invariants(jobs):
    specs = [
        JobSpec("poisson1", seconds, ranks, 2.4, repeat_index=i)
        for i, (seconds, ranks) in enumerate(jobs)
    ]
    sim = SlurmSimulator(wisconsin_cluster(), _Exec(), rng=0)
    records = sim.run_batch(specs)

    # 1. Every submitted job completes exactly once.
    assert len(records) == len(specs)
    assert len({r.job_id for r in records}) == len(specs)

    # 2. Time sanity: start >= submit, end = start + runtime.
    for r in records:
        assert r.start_time >= r.submit_time - 1e-9
        assert r.end_time == r.start_time + r.runtime_seconds
        assert r.wait_seconds >= -1e-9

    # 3. Node capacity never exceeded (process releases before acquisitions
    #    at tie timestamps).
    events = []
    for r in records:
        events.append((r.start_time, r.n_nodes))
        events.append((r.end_time, -r.n_nodes))
    in_use = 0
    for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
        in_use += delta
        assert 0 <= in_use <= 4

    # 4. No node hosts two jobs at once.
    spans: dict = {}
    for r in records:
        for node in r.node_list.split(","):
            spans.setdefault(node, []).append((r.start_time, r.end_time))
    for node_spans in spans.values():
        node_spans.sort()
        for (s1, e1), (s2, e2) in zip(node_spans, node_spans[1:]):
            assert s2 >= e1 - 1e-9

    # 5. Node count matches the rank requirement.
    for r, spec in zip(sorted(records, key=lambda x: x.job_id), specs):
        assert r.n_nodes == -(-spec.np_ranks // 32)
