"""Tests for per-node circuit breakers and their scheduler wiring."""

import numpy as np
import pytest

from repro.cluster import (
    AllNodesOpenError,
    BreakerConfig,
    FaultConfig,
    FaultyExecutor,
    JobSpec,
    NodeCircuitBreaker,
    SlurmSimulator,
    wisconsin_cluster,
)
from repro.cluster.breaker import BLACKLISTED, CLOSED, HALF_OPEN, OPEN
from repro.datasets.generate import ModelExecutor


def _spec(i=0, ranks=32):
    # 32 ranks = one 32-thread node on the Wisconsin testbed.
    return JobSpec("poisson1", float(96**3), ranks, 2.4, repeat_index=i)


# --------------------------------------------------------------- config


def test_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(window=0)
    with pytest.raises(ValueError):
        BreakerConfig(window_failure_rate=0.0)
    with pytest.raises(ValueError):
        BreakerConfig(window_failure_rate=1.5)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown_seconds=-1.0)
    with pytest.raises(ValueError):
        BreakerConfig(half_open_max_probes=0)
    with pytest.raises(ValueError):
        BreakerConfig(max_opens=0)


# ---------------------------------------------------- state machine unit


def test_trips_open_after_consecutive_failures():
    br = NodeCircuitBreaker(BreakerConfig(failure_threshold=3), n_nodes=2)
    for _ in range(2):
        br.record_failure(0, t=10.0)
    assert br.state(0, 10.0) == CLOSED  # one short of the threshold
    br.record_failure(0, t=20.0)
    assert br.state(0, 20.0) == OPEN
    assert not br.allow(0, 20.0)
    assert br.allow(1, 20.0)  # other nodes unaffected
    assert br.n_opened == 1


def test_success_resets_consecutive_count():
    br = NodeCircuitBreaker(BreakerConfig(failure_threshold=2), n_nodes=1)
    br.record_failure(0, 0.0)
    br.record_success(0, 1.0)
    br.record_failure(0, 2.0)
    assert br.state(0, 2.0) == CLOSED  # streak was broken


def test_windowed_failure_rate_trips_flaky_node():
    cfg = BreakerConfig(failure_threshold=10, window=4, window_failure_rate=0.5)
    br = NodeCircuitBreaker(cfg, n_nodes=1)
    # Alternate success/failure: never 10 consecutive, but 2/4 in window.
    br.record_failure(0, 0.0)
    br.record_success(0, 1.0)
    br.record_failure(0, 2.0)
    assert br.state(0, 2.0) == CLOSED  # window not full yet
    br.record_success(0, 3.0)
    br.record_failure(0, 4.0)
    assert br.state(0, 4.0) == OPEN


def test_cooldown_expiry_goes_half_open_and_probe_success_closes():
    cfg = BreakerConfig(failure_threshold=1, cooldown_seconds=100.0, max_opens=5)
    br = NodeCircuitBreaker(cfg, n_nodes=1)
    br.record_failure(0, t=0.0)
    assert br.state(0, 50.0) == OPEN
    assert br.state(0, 100.0) == HALF_OPEN  # lazy transition at cooldown end
    assert br.allow(0, 100.0)
    br.on_job_start([0], 100.0)
    assert br.n_probes == 1
    br.record_success(0, 150.0)
    assert br.state(0, 150.0) == CLOSED
    assert br.n_closed == 1


def test_half_open_probe_failure_reopens():
    cfg = BreakerConfig(failure_threshold=1, cooldown_seconds=100.0, max_opens=5)
    br = NodeCircuitBreaker(cfg, n_nodes=1)
    br.record_failure(0, 0.0)
    br.on_job_start([0], 120.0)  # resolves to half-open, probe starts
    br.record_failure(0, 130.0)
    assert br.state(0, 130.0) == OPEN
    assert br.n_opened == 2
    # The new cooldown counts from the reopen time.
    assert br.state(0, 130.0 + 99.0) == OPEN
    assert br.state(0, 130.0 + 100.0) == HALF_OPEN


def test_half_open_caps_concurrent_probes():
    cfg = BreakerConfig(
        failure_threshold=1, cooldown_seconds=10.0, half_open_max_probes=1,
        max_opens=5,
    )
    br = NodeCircuitBreaker(cfg, n_nodes=1)
    br.record_failure(0, 0.0)
    assert br.allow(0, 20.0)  # half-open, probe slot free
    br.on_job_start([0], 20.0)
    assert not br.allow(0, 20.0)  # slot taken until the probe resolves


def test_blacklist_after_max_opens():
    cfg = BreakerConfig(failure_threshold=1, cooldown_seconds=10.0, max_opens=2)
    br = NodeCircuitBreaker(cfg, n_nodes=2)
    br.record_failure(0, 0.0)  # open #1
    br.on_job_start([0], 20.0)  # half-open probe
    br.record_failure(0, 21.0)  # open #2 -> blacklisted
    assert br.state(0, 1e9) == BLACKLISTED  # never recovers
    assert not br.allow(0, 1e9)
    assert br.n_blacklisted == 1
    assert br.placeable_nodes() == 1


def test_next_transition_time_only_counts_open_nodes():
    cfg = BreakerConfig(failure_threshold=1, cooldown_seconds=100.0, max_opens=5)
    br = NodeCircuitBreaker(cfg, n_nodes=3)
    assert br.next_transition_time(0.0) is None
    br.record_failure(0, 0.0)
    br.record_failure(1, 30.0)
    assert br.next_transition_time(50.0) == pytest.approx(100.0)
    # Past node 0's expiry, only node 1's future transition remains.
    assert br.next_transition_time(110.0) == pytest.approx(130.0)


# ---------------------------------------------------------- fault model


def test_drift_rescales_runtime_but_verifies():
    ex = FaultyExecutor(
        ModelExecutor(),
        FaultConfig(drift_after_jobs=2, drift_factor=2.0),
        rng=0,
    )
    clean = ModelExecutor()
    runtimes, clean_runtimes = [], []
    for i in range(4):
        out = ex.execute(_spec(i), np.random.default_rng(i))
        ref = clean.execute(_spec(i), np.random.default_rng(i))
        runtimes.append(out.runtime_seconds)
        clean_runtimes.append(ref.runtime_seconds)
        assert out.verification_passed
        assert not out.failed
    assert runtimes[0] == pytest.approx(clean_runtimes[0])
    assert runtimes[1] == pytest.approx(clean_runtimes[1])
    assert runtimes[2] == pytest.approx(2.0 * clean_runtimes[2])
    assert runtimes[3] == pytest.approx(2.0 * clean_runtimes[3])
    assert ex.stats.n_drifted == 2
    assert ex.stats.n_faults == 0  # drift is not a per-job fault


def test_drift_config_validation():
    with pytest.raises(ValueError):
        FaultConfig(drift_after_jobs=-1)
    with pytest.raises(ValueError, match="no-op"):
        FaultConfig(drift_after_jobs=5)  # factor left at 1.0
    with pytest.raises(ValueError):
        FaultConfig(node_crash_rates={0: 1.5})


def test_execute_on_without_node_rates_matches_execute():
    """execute_on must route through execute so subclass overrides hold."""

    class Logging(FaultyExecutor):
        def __init__(self, *a, **k):
            super().__init__(*a, **k)
            self.calls = 0

        def execute(self, spec, rng):
            self.calls += 1
            return super().execute(spec, rng)

    ex = Logging(ModelExecutor(), FaultConfig(), rng=0)
    ref = FaultyExecutor(ModelExecutor(), FaultConfig(), rng=0)
    out = ex.execute_on(_spec(), np.random.default_rng(7), (0,))
    out_ref = ref.execute(_spec(), np.random.default_rng(7))
    assert out == out_ref
    assert ex.calls == 1


def test_node_crash_rates_target_specific_nodes():
    cfg = FaultConfig(node_crash_rates={0: 1.0})
    ex = FaultyExecutor(ModelExecutor(), cfg, rng=0)
    on_bad = ex.execute_on(_spec(), np.random.default_rng(1), (0,))
    assert on_bad.failed
    on_good = ex.execute_on(_spec(1), np.random.default_rng(1), (1,))
    assert not on_good.failed
    assert ex.stats.n_node_crashes == 1


# ------------------------------------------------------ scheduler wiring


def _crashy_sim(breaker, *, node_rates, n_jobs, seed=0, offset=0.0):
    ex = FaultyExecutor(
        ModelExecutor(), FaultConfig(node_crash_rates=node_rates), rng=seed
    )
    sim = SlurmSimulator(
        wisconsin_cluster(),
        ex,
        rng=seed,
        breaker=breaker,
        breaker_clock_offset=offset,
    )
    return sim, [_spec(i) for i in range(n_jobs)]


def test_scheduler_routes_around_open_node():
    br = NodeCircuitBreaker(
        BreakerConfig(failure_threshold=2, cooldown_seconds=1e9), n_nodes=4
    )
    sim, specs = _crashy_sim(br, node_rates={0: 1.0}, n_jobs=12)
    records = sim.run_batch(specs)
    assert len(records) == 12
    assert br.state(0, 0.0) == OPEN
    failed_on_0 = [r for r in records if r.state == "FAILED" and "node0" in r.node_list]
    # The breaker caps node0's damage at the trip threshold.
    assert len(failed_on_0) == 2
    # Everything after the trip completed on the healthy nodes.
    late = [r for r in records if r.state == "COMPLETED"]
    assert all("node0" not in r.node_list for r in late)
    assert len(late) == 10


def test_all_nodes_open_raises_actionable_error_not_deadlock():
    # Every node crashes every job; a single open blacklists permanently.
    br = NodeCircuitBreaker(
        BreakerConfig(failure_threshold=1, max_opens=1), n_nodes=4
    )
    rates = {n: 1.0 for n in range(4)}
    sim, specs = _crashy_sim(br, node_rates=rates, n_jobs=8)
    with pytest.raises(AllNodesOpenError) as err:
        sim.run_batch(specs)
    message = str(err.value)
    assert "blacklisted" in message
    assert "Remediations" in message
    assert "failure_threshold" in message


def test_cooldown_expiry_mid_batch_fast_forwards_and_recovers():
    """With all nodes tripped, the queue waits out the cooldown and probes."""

    class FailFirstN:
        """Crash the first ``n`` executions, then behave."""

        def __init__(self, n):
            self.inner = ModelExecutor()
            self.n = n
            self.count = 0

        def estimate(self, spec):
            return self.inner.estimate(spec)

        def execute(self, spec, rng):
            out = self.inner.execute(spec, rng)
            self.count += 1
            if self.count <= self.n:
                from dataclasses import replace

                return replace(
                    out,
                    runtime_seconds=out.runtime_seconds * 0.1,
                    failed=True,
                    verification_passed=False,
                )
            return out

    br = NodeCircuitBreaker(
        BreakerConfig(failure_threshold=1, cooldown_seconds=5000.0, max_opens=5),
        n_nodes=4,
    )
    # 4 crashes trip all 4 nodes; the remaining jobs must wait out the
    # cooldown, probe half-open nodes, and complete.
    sim = SlurmSimulator(wisconsin_cluster(), FailFirstN(4), rng=0, breaker=br)
    specs = [_spec(i) for i in range(8)]
    records = sim.run_batch(specs)
    assert len(records) == 8
    completed = [r for r in records if r.state == "COMPLETED"]
    assert len(completed) == 4
    # Recovery happened after the cooldown, not before.
    assert all(r.start_time >= 5000.0 for r in completed)
    assert br.n_probes >= 1
    assert br.n_closed >= 1


def test_breaker_clock_offset_maps_wave_time_to_campaign_time():
    br = NodeCircuitBreaker(
        BreakerConfig(failure_threshold=1, cooldown_seconds=1e9), n_nodes=4
    )
    sim, specs = _crashy_sim(br, node_rates={0: 1.0}, n_jobs=2, offset=12345.0)
    sim.run_batch(specs)
    assert br.state(0, 12345.0 + 1.0) == OPEN
    # The open was stamped on the campaign-global timeline.
    assert br._nodes[0].opened_at >= 12345.0


def test_wide_job_blocked_by_blacklist_raises():
    """A 4-node job can never run once one node is blacklisted."""
    br = NodeCircuitBreaker(
        BreakerConfig(failure_threshold=1, max_opens=1), n_nodes=4
    )
    ex = FaultyExecutor(
        ModelExecutor(), FaultConfig(node_crash_rates={0: 1.0}), rng=0
    )
    sim = SlurmSimulator(wisconsin_cluster(), ex, rng=0, breaker=br)
    specs = [_spec(0), _spec(1), _spec(2, ranks=128)]  # last needs all 4 nodes
    with pytest.raises(AllNodesOpenError):
        sim.run_batch(specs)


def test_breaker_node_count_must_match_cluster():
    br = NodeCircuitBreaker(n_nodes=2)
    with pytest.raises(ValueError, match="nodes"):
        SlurmSimulator(wisconsin_cluster(), ModelExecutor(), breaker=br)


def test_no_breaker_behaviour_unchanged():
    """A breaker-free simulator is bit-identical to the pre-breaker code."""
    ex1 = FaultyExecutor(ModelExecutor(), FaultConfig(crash_rate=0.2), rng=3)
    ex2 = FaultyExecutor(ModelExecutor(), FaultConfig(crash_rate=0.2), rng=3)
    specs = [_spec(i) for i in range(6)]
    rec1 = SlurmSimulator(wisconsin_cluster(), ex1, rng=1).run_batch(specs)
    rec2 = SlurmSimulator(wisconsin_cluster(), ex2, rng=1).run_batch(specs)
    assert [r.state for r in rec1] == [r.state for r in rec2]
    assert [r.runtime_seconds for r in rec1] == [r.runtime_seconds for r in rec2]
