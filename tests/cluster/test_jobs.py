"""Tests for job specs and the 46-attribute accounting record."""

import pytest

from repro.cluster import JOB_RECORD_FIELDS, JobSpec


def test_job_record_has_46_attributes():
    """The paper: 'up to 46 attributes for each job'."""
    assert len(JOB_RECORD_FIELDS) == 46


def test_job_record_field_groups_present():
    for field in (
        "operator",
        "problem_size",
        "np_ranks",
        "freq_ghz",
        "runtime_seconds",
        "energy_joules",
        "max_rss_mb_node0",
        "state",
        "partition",
        "power_records_per_minute",
    ):
        assert field in JOB_RECORD_FIELDS


def test_job_spec_validation():
    JobSpec("poisson1", 1e6, 32, 2.4)
    with pytest.raises(ValueError):
        JobSpec("poisson1", -1.0, 32, 2.4)
    with pytest.raises(ValueError):
        JobSpec("poisson1", 1e6, 0, 2.4)
    with pytest.raises(ValueError):
        JobSpec("poisson1", 1e6, 32, 0.0)
    with pytest.raises(ValueError):
        JobSpec("poisson1", 1e6, 32, 2.4, repeat_index=-1)


def test_cost_core_seconds(performance_dataset):
    record = performance_dataset.records[0]
    assert record.cost_core_seconds == pytest.approx(
        record.runtime_seconds * record.np_ranks
    )


def test_spec_roundtrip(performance_dataset):
    record = performance_dataset.records[0]
    spec = record.spec
    assert spec.operator == record.operator
    assert spec.np_ranks == record.np_ranks
    assert spec.problem_size == record.problem_size
