"""Tests for the testbed hardware description."""

import pytest

from repro.cluster import CPUSpec, ClusterSpec, NodeSpec, wisconsin_cluster
from repro.cluster.machine import DVFS_LEVELS_GHZ


def test_wisconsin_matches_paper():
    """4 nodes x 2 x 8-core E5-2630v3, 128 GB, 10 GbE, 1.2-2.4 GHz."""
    c = wisconsin_cluster()
    assert c.n_nodes == 4
    assert c.node.n_sockets == 2
    assert c.node.cpu.model == "E5-2630v3"
    assert c.node.cpu.cores == 8
    assert c.node.ram_gb == 128.0
    assert c.node.nic_gbps == 10.0
    assert c.node.cpu.min_freq_ghz == 1.2
    assert c.node.cpu.base_freq_ghz == 2.4
    assert DVFS_LEVELS_GHZ == (1.2, 1.5, 1.8, 2.1, 2.4)


def test_core_and_thread_counts():
    c = wisconsin_cluster()
    assert c.node.total_cores == 16
    assert c.node.total_threads == 32
    assert c.total_cores == 64
    assert c.total_threads == 128  # the paper's NP=128 upper level


@pytest.mark.parametrize(
    "ranks,nodes",
    [(1, 1), (16, 1), (32, 1), (33, 2), (64, 2), (96, 3), (128, 4)],
)
def test_nodes_for_ranks(ranks, nodes):
    assert wisconsin_cluster().nodes_for_ranks(ranks) == nodes


def test_nodes_for_ranks_capacity():
    c = wisconsin_cluster()
    with pytest.raises(ValueError):
        c.nodes_for_ranks(129)
    with pytest.raises(ValueError):
        c.nodes_for_ranks(0)


def test_frequency_validation():
    cpu = CPUSpec()
    cpu.validate_frequency(1.8)
    with pytest.raises(ValueError):
        cpu.validate_frequency(3.0)
    with pytest.raises(ValueError):
        cpu.validate_frequency(1.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        CPUSpec(cores=0)
    with pytest.raises(ValueError):
        CPUSpec(threads_per_core=0)
    with pytest.raises(ValueError):
        CPUSpec(min_freq_ghz=3.0, base_freq_ghz=2.0)
    with pytest.raises(ValueError):
        CPUSpec(tdp_watts=-5.0)
    with pytest.raises(ValueError):
        NodeSpec(n_sockets=0)
    with pytest.raises(ValueError):
        NodeSpec(ram_gb=0.0)
    with pytest.raises(ValueError):
        ClusterSpec(n_nodes=0)
