"""Failure-injection tests: crashed jobs, timeouts, total trace loss."""

import numpy as np
import pytest

from repro.cluster import (
    ExecutionOutcome,
    IPMISampler,
    JobSpec,
    PowerModel,
    SlurmSimulator,
    wisconsin_cluster,
)


class FlakyExecutor:
    """Every third job crashes; others run for their requested seconds."""

    def __init__(self):
        self.count = 0

    def estimate(self, spec):
        return spec.problem_size

    def execute(self, spec, rng):
        self.count += 1
        failed = self.count % 3 == 0
        return ExecutionOutcome(
            runtime_seconds=spec.problem_size * (0.2 if failed else 1.0),
            failed=failed,
            verification_passed=not failed,
        )


def _spec(seconds, ranks, rep):
    return JobSpec("poisson1", float(seconds), ranks, 2.4, repeat_index=rep)


def test_failed_jobs_recorded_not_lost():
    sim = SlurmSimulator(wisconsin_cluster(), FlakyExecutor(), rng=0)
    specs = [_spec(5.0, 32, i) for i in range(9)]
    records = sim.run_batch(specs)
    assert len(records) == 9
    failed = [r for r in records if r.state == "FAILED"]
    assert len(failed) == 3
    for r in failed:
        assert r.exit_code == 1
        assert not r.verification_passed
    # The schedule keeps flowing after failures.
    assert all(r.end_time > r.start_time for r in records)


def test_failed_jobs_release_nodes():
    """Crashes must free their nodes for queued work."""
    sim = SlurmSimulator(wisconsin_cluster(), FlakyExecutor(), rng=0)
    specs = [_spec(5.0, 128, i) for i in range(6)]  # serialized full-cluster jobs
    records = sim.run_batch(specs)
    records.sort(key=lambda r: r.start_time)
    for a, b in zip(records, records[1:]):
        assert b.start_time >= a.end_time - 1e-9


class NoTraceSampler(IPMISampler):
    """An IPMI sensor that lost every sample (extreme gap pathology)."""

    def sample(self, duration_s, mean_watts, rng):
        trace = super().sample(duration_s, mean_watts, rng)
        from repro.cluster.power import PowerTrace

        return PowerTrace(times=np.empty(0), watts=np.empty(0))


def test_total_trace_loss_yields_unusable_energy():
    sim = SlurmSimulator(
        wisconsin_cluster(),
        FlakyExecutor(),
        power_model=PowerModel(),
        sampler=NoTraceSampler(),
        rng=0,
    )
    records = sim.run_batch([_spec(60.0, 32, 0)])
    r = records[0]
    assert r.power_records == 0
    assert not r.energy_usable
    assert r.energy_joules is None
    assert r.mean_power_watts is None


def test_dataset_generation_excludes_pathological_jobs():
    """The Power campaign filter drops FAILED/TIMEOUT/gappy jobs."""
    from repro.datasets.generate import generate_power_dataset

    ds = generate_power_dataset(seed=7, n_jobs=50, min_runtime_s=60.0)
    assert len(ds) == 50
    assert all(r.state == "COMPLETED" for r in ds.records)
    assert all(r.energy_usable for r in ds.records)


def test_timeout_pathology_contained():
    class SlowExecutor:
        def estimate(self, spec):
            return spec.problem_size

        def execute(self, spec, rng):
            return ExecutionOutcome(runtime_seconds=spec.problem_size * 100)

    sim = SlurmSimulator(
        wisconsin_cluster(), SlowExecutor(), rng=0, time_limit_seconds=10.0
    )
    records = sim.run_batch([_spec(5.0, 32, 0), _spec(5.0, 32, 1)])
    assert all(r.state == "TIMEOUT" for r in records)
    assert all(r.runtime_seconds == pytest.approx(10.0) for r in records)
    # Timeouts release nodes; second job starts right after the first ends
    # (same node pool would allow concurrency here — both fit, so equal
    # start times are fine; the key property is completion).
    assert len(records) == 2


def test_failed_record_carries_exit_code_and_truncated_runtime():
    """A crash is visible in the accounting record itself: exit_code 1 and
    the runtime truncated at the crash point, not the full would-be run."""
    sim = SlurmSimulator(wisconsin_cluster(), FlakyExecutor(), rng=0)
    records = sim.run_batch([_spec(5.0, 32, i) for i in range(3)])
    by_state = {r.state: r for r in records}
    ok, failed = by_state["COMPLETED"], by_state["FAILED"]
    assert failed.exit_code == 1
    assert not failed.verification_passed
    assert failed.runtime_seconds == pytest.approx(0.2 * 5.0)
    assert ok.exit_code == 0
    assert ok.runtime_seconds == pytest.approx(5.0)


def test_timeout_record_carries_exit_code_and_truncated_runtime():
    class SlowExecutor:
        def estimate(self, spec):
            return spec.problem_size

        def execute(self, spec, rng):
            return ExecutionOutcome(runtime_seconds=spec.problem_size * 100)

    sim = SlurmSimulator(
        wisconsin_cluster(), SlowExecutor(), rng=0, time_limit_seconds=10.0
    )
    (record,) = sim.run_batch([_spec(5.0, 32, 0)])
    assert record.state == "TIMEOUT"
    assert record.exit_code == 1
    assert record.runtime_seconds == pytest.approx(10.0)  # killed at the limit
