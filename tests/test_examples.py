"""Smoke tests: the example scripts run end to end.

The heavyweight study examples (``offline_al_study.py``) are exercised
through their underlying experiment modules in
``tests/experiments/test_figures.py``; here we execute the quick scripts
exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "final test RMSE" in out
    assert "AL convergence" in out


def test_online_hpgmg_runs():
    out = _run("online_hpgmg.py", "--budget-seconds", "3")
    assert "real multigrid solves" in out
    assert "predicted log10 runtime" in out


def test_cluster_campaign_runs():
    out = _run("cluster_campaign.py")
    assert "campaign makespan" in out
    assert "node utilization" in out


def test_continuous_al_runs():
    out = _run("continuous_al.py", "--iterations", "4")
    assert "learned log10 runtime surface" in out


def test_energy_modeling_runs():
    out = _run("energy_modeling.py", timeout=420.0)
    assert "trapezoidal energy estimate" in out
    assert "AL would next measure" in out


def test_performance_modeling_runs():
    out = _run("performance_modeling.py", timeout=420.0)
    assert "LOO-CV RMSE" in out
    assert "active-learning suggestions" in out


def test_parallel_campaign_runs():
    out = _run("parallel_campaign.py")
    assert "sim wall-clock" in out
    assert "parallelism tradeoff" in out
