"""Fault tolerance of the process backend: worker death, timeouts, degradation."""

import os
import signal
import time
from pathlib import Path

import pytest

from repro import telemetry as tm
from repro.parallel import ParallelMap, TaskTimeout, WorkerCrashed
from repro.parallel import pmap as pmap_mod


def _square(x):
    return x * x


class _KillWorkerOnce:
    """SIGKILL the worker process on the first attempt at one item.

    The marker file makes the kill one-shot, so the retry succeeds —
    the OOM-killed-once scenario.  Module-level and stateless across
    pickling, hence process-safe.
    """

    def __init__(self, marker: str, victim):
        self.marker = marker
        self.victim = victim

    def __call__(self, x):
        if x == self.victim and not Path(self.marker).exists():
            Path(self.marker).write_text("killed")
            os.kill(os.getpid(), signal.SIGKILL)
        return x * x


class _PoisonTask:
    """SIGKILL the worker on *every* attempt at one item."""

    def __init__(self, victim):
        self.victim = victim

    def __call__(self, x):
        if x == self.victim:
            os.kill(os.getpid(), signal.SIGKILL)
        return x * x


class _SlowOnce:
    """Sleep far past the timeout on the first attempt at one item."""

    def __init__(self, marker: str, victim, delay=30.0):
        self.marker = marker
        self.victim = victim
        self.delay = delay

    def __call__(self, x):
        if x == self.victim and not Path(self.marker).exists():
            Path(self.marker).write_text("slept")
            time.sleep(self.delay)
        return x * x


def test_worker_death_is_retried_not_hung(tmp_path):
    """Satellite: a SIGKILL'd worker's task is retried, the pool recovers."""
    task = _KillWorkerOnce(str(tmp_path / "killed"), victim=3)
    pm = ParallelMap("process", n_workers=2, max_task_retries=3)
    results = pm.map(task, list(range(6)))
    assert results == [x * x for x in range(6)]
    assert (tmp_path / "killed").exists()


def test_poison_task_reported_not_hung():
    pm = ParallelMap("process", n_workers=2, max_task_retries=1,
                     max_pool_failures=20)
    with pytest.raises(WorkerCrashed):
        pm.map(_PoisonTask(victim=2), list(range(4)))


def test_pool_break_cap_bounds_total_damage():
    pm = ParallelMap("process", n_workers=2, max_task_retries=50,
                     max_pool_failures=2)
    with pytest.raises(WorkerCrashed, match="broke 2 times"):
        pm.map(_PoisonTask(victim=0), list(range(4)))


def test_task_timeout_retried_then_succeeds(tmp_path):
    task = _SlowOnce(str(tmp_path / "slept"), victim=1)
    pm = ParallelMap("process", n_workers=2, task_timeout=5.0,
                     max_task_retries=2)
    results = pm.map(task, list(range(4)))
    assert results == [x * x for x in range(4)]


def _always_slow(x):
    if x == 0:
        time.sleep(30.0)
    return x * x


def test_task_timeout_exhausted_raises():
    task = _always_slow
    pm = ParallelMap("process", n_workers=2, task_timeout=0.5,
                     max_task_retries=1)
    t0 = time.monotonic()
    with pytest.raises(TaskTimeout, match="task 0"):
        pm.map(task, [0, 1])
    # Two attempts at ~0.5 s each, not the 30 s sleep.
    assert time.monotonic() - t0 < 20.0


def test_construction_failure_degrades_to_thread(monkeypatch):
    """An infra failure (pool cannot even start) degrades the backend."""

    def broken_pool(*args, **kwargs):
        raise OSError("fork: resource temporarily unavailable")

    monkeypatch.setattr(pmap_mod, "ProcessPoolExecutor", broken_pool)
    pm = ParallelMap("process", n_workers=2, degrade_after=1)
    results = pm.map(_square, list(range(8)))
    assert results == [x * x for x in range(8)]


def test_degraded_run_counts_telemetry(monkeypatch, tmp_path):
    monkeypatch.setattr(
        pmap_mod, "ProcessPoolExecutor",
        lambda *a, **k: (_ for _ in ()).throw(OSError("no forks left")),
    )
    pm = ParallelMap("process", n_workers=2, degrade_after=2)
    with tm.session(tmp_path / "trace.jsonl"):
        results = pm.map(_square, [1, 2, 3])
        counters = tm.get_registry().dump()["counters"]
    assert results == [1, 4, 9]
    assert counters["parallel.pool.failures"] == 2
    assert counters["parallel.backend.degraded"] == 1


def test_retry_preserves_determinism_and_telemetry(tmp_path):
    """Retried sweeps return bit-identical results and count the retry."""
    task = _KillWorkerOnce(str(tmp_path / "killed"), victim=2)
    pm = ParallelMap("process", n_workers=2, max_task_retries=3)
    with tm.session(tmp_path / "trace.jsonl"):
        chaotic = pm.map(task, list(range(5)))
        counters = tm.get_registry().dump()["counters"]
    clean = ParallelMap("serial").map(_square, list(range(5)))
    assert chaotic == clean
    assert counters["parallel.worker.deaths"] >= 1
