"""Tests for repro.parallel.pmap — the determinism contract itself."""

import os

import numpy as np
import pytest

from repro import telemetry as tm
from repro.parallel import (
    BACKENDS,
    ENV_BACKEND,
    ParallelMap,
    resolve_backend,
    spawn_generators,
    spawn_seeds,
)

# Module-level tasks so the process backend can pickle them.


def square(x):
    return x * x


def seeded_draw(item):
    """Draw from the task's own spawned stream — the determinism pattern."""
    index, seed_seq = item
    rng = np.random.default_rng(seed_seq)
    return index, rng.standard_normal(4).tolist()


def telemetry_task(item):
    tm.count("pmap.tasks")
    tm.observe("pmap.values", float(item))
    tm.gauge_set("pmap.last", float(item))
    return item


def boom(x):
    raise RuntimeError(f"task {x} exploded")


def tag_with_pid(x):
    return (x, os.getpid())


class TestResolveBackend:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "thread")
        assert resolve_backend("serial") == "serial"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "thread")
        assert resolve_backend(None, default="process") == "thread"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None, default="serial") == "serial"

    def test_empty_env_falls_through(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "")
        assert resolve_backend(None, default="process") == "process"

    def test_case_insensitive(self):
        assert resolve_backend("PROCESS") == "process"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            resolve_backend("gpu")

    def test_env_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "proces")
        with pytest.raises(ValueError, match="proces"):
            resolve_backend(None)


class TestSpawnSeeds:
    def test_streams_are_independent_and_stable(self):
        a = [np.random.default_rng(s).random(8) for s in spawn_seeds(42, 3)]
        b = [np.random.default_rng(s).random(8) for s in spawn_seeds(42, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
        assert not np.allclose(a[0], a[1])
        assert not np.allclose(a[1], a[2])

    def test_prefix_stability(self):
        """Child i is the same stream regardless of how many siblings exist."""
        few = spawn_seeds(7, 2)
        many = spawn_seeds(7, 5)
        for f, m in zip(few, many):
            np.testing.assert_array_equal(
                np.random.default_rng(f).random(4),
                np.random.default_rng(m).random(4),
            )

    def test_accepts_seedsequence(self):
        root = np.random.SeedSequence(3)
        assert len(spawn_seeds(root, 2)) == 2

    def test_generators_helper(self):
        gens = spawn_generators(0, 3)
        assert len(gens) == 3
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestParallelMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_input_order(self, backend):
        pm = ParallelMap(backend, 3)
        assert pm.map(square, range(10)) == [x * x for x in range(10)]

    def test_backends_and_widths_bit_identical(self):
        """The core contract: same answers on every backend, every width."""
        items = list(enumerate(spawn_seeds(123, 6)))
        baseline = ParallelMap("serial").map(seeded_draw, items)
        for backend in ("thread", "process"):
            for width in (2, 4):
                got = ParallelMap(backend, width).map(seeded_draw, items)
                assert got == baseline, (backend, width)

    def test_empty_items(self):
        assert ParallelMap("process", 2).map(square, []) == []

    def test_single_item_avoids_pool(self):
        assert ParallelMap("process", 4).map(square, [3]) == [9]

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelMap("serial", 0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exceptions_propagate(self, backend):
        pm = ParallelMap(backend, 2)
        with pytest.raises(RuntimeError, match="exploded"):
            pm.map(boom, [1, 2, 3])

    def test_starmap(self):
        pm = ParallelMap("process", 2)
        assert pm.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_repr(self):
        assert "serial" in repr(ParallelMap("serial", 2))

    def test_instance_is_picklable(self):
        import pickle

        pm = pickle.loads(pickle.dumps(ParallelMap("process", 3)))
        assert pm.backend == "process" and pm.n_workers == 3


class TestCrossProcessTelemetry:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_metrics_merge_into_parent(self, backend):
        """Counters/histograms recorded inside workers survive the join."""
        with tm.session():
            ParallelMap(backend, 2).map(telemetry_task, [1.0, 2.0, 3.0, 4.0])
            reg = tm.get_registry()
            snap = reg.snapshot()
        assert snap["counters"]["pmap.tasks"] == 4
        hist = snap["histograms"]["pmap.values"]
        assert hist["count"] == 4
        assert hist["total"] == pytest.approx(10.0)
        # Gauge merge is last-write-wins in *input* order.
        assert snap["gauges"]["pmap.last"] == pytest.approx(4.0)

    def test_process_backend_without_telemetry(self):
        """No session enabled: tasks still run, nothing is recorded."""
        assert not tm.enabled()
        assert ParallelMap("process", 2).map(telemetry_task, [1.0, 2.0]) == [
            1.0,
            2.0,
        ]

    def test_worker_session_isolates_and_restores(self):
        with tm.session():
            parent = tm.get_registry()
            tm.count("outer")
            with tm.worker_session() as worker_reg:
                assert tm.get_registry() is worker_reg
                assert tm.get_writer() is None
                tm.count("inner")
            assert tm.get_registry() is parent
            snap = parent.snapshot()
        assert snap["counters"] == {"outer": 1}
        assert worker_reg.snapshot()["counters"] == {"inner": 1}


class TestMapGrouped:
    """Affinity groups: same key -> same worker, results in input order."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_result_identical_to_plain_map(self, backend):
        items = list(range(10))
        keys = [i % 3 for i in items]
        pmap = ParallelMap(backend, 3)
        assert pmap.map_grouped(square, items, keys) == pmap.map(square, items)

    def test_same_key_lands_on_same_process(self):
        items = list(range(12))
        keys = [i % 4 for i in items]
        tagged = ParallelMap("process", 4).map_grouped(tag_with_pid, items, keys)
        assert [value for value, _ in tagged] == items
        by_key = {}
        for (_, pid), key in zip(tagged, keys):
            by_key.setdefault(key, set()).add(pid)
        assert all(len(pids) == 1 for pids in by_key.values())

    def test_scatter_preserves_input_order(self):
        items = [5, 1, 4, 2, 3]
        keys = ["a", "b", "a", "b", "a"]
        assert ParallelMap("thread", 2).map_grouped(square, items, keys) == [
            25,
            1,
            16,
            4,
            9,
        ]

    def test_unique_keys_short_circuit_and_length_check(self):
        pmap = ParallelMap("serial")
        assert pmap.map_grouped(square, [1, 2, 3], ["x", "y", "z"]) == [1, 4, 9]
        with pytest.raises(ValueError, match="equal length"):
            pmap.map_grouped(square, [1, 2], ["x"])


def test_env_var_steers_callsites(monkeypatch):
    monkeypatch.setenv(ENV_BACKEND, "serial")
    assert ParallelMap(None, 4, default_backend="process").backend == "serial"
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    assert ParallelMap(None, 4, default_backend="serial").backend == "serial"


def test_worker_count_defaults_to_cpu_count():
    assert ParallelMap("serial").n_workers == (os.cpu_count() or 1)
