"""Tests for Table I factor levels and the feasibility rule."""

import pytest

from repro.datasets import (
    FREQ_LEVELS_GHZ,
    NP_LEVELS,
    OPERATORS,
    PROBLEM_SIZES,
    FeasibilityRule,
    full_factorial,
)


def test_factor_levels_match_table1():
    assert OPERATORS == ("poisson1", "poisson2", "poisson2affine")
    assert NP_LEVELS == (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
    assert FREQ_LEVELS_GHZ == (1.2, 1.5, 1.8, 2.1, 2.4)


def test_problem_size_range_matches_table1():
    """Table I: 1.7e3 - 1.1e9."""
    assert min(PROBLEM_SIZES) == 12**3 == 1728
    assert max(PROBLEM_SIZES) == 1024**3
    assert 1.6e3 < min(PROBLEM_SIZES) < 1.8e3
    assert 1.0e9 < max(PROBLEM_SIZES) < 1.1e9


def test_full_factorial_size():
    grid = full_factorial()
    assert len(grid) == len(OPERATORS) * len(PROBLEM_SIZES) * len(NP_LEVELS) * len(
        FREQ_LEVELS_GHZ
    )
    assert len(set(grid)) == len(grid)


def test_memory_rule():
    rule = FeasibilityRule()
    # 1.07e9 DOF x 48 B = ~51 GB: fits one node.
    assert rule.memory_ok(1024**3, 32)
    # A hypothetical ~8x larger problem would not fit one node...
    assert not rule.memory_ok(9e9, 32)
    # ...but spreads across the 4 nodes of a 128-rank job (432 <= 480 GB).
    assert rule.memory_ok(9e9, 128)


def test_runtime_rule():
    rule = FeasibilityRule()
    assert rule.runtime_ok(100.0)
    assert not rule.runtime_ok(1000.0)


def test_feasible_combines_both():
    rule = FeasibilityRule()
    assert rule.feasible(1e6, 1, 10.0)
    assert not rule.feasible(1e6, 1, 1e4)
    assert not rule.feasible(1e11, 1, 10.0)


def test_nodes_for():
    rule = FeasibilityRule()
    assert rule.nodes_for(1) == 1
    assert rule.nodes_for(33) == 2
    assert rule.nodes_for(128) == 4
