"""Property-based tests over the generated datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DesignSpec


def test_every_record_internally_consistent(performance_dataset):
    for r in performance_dataset.records:
        # Scheduling arithmetic.
        assert r.end_time == pytest.approx(r.start_time + r.runtime_seconds)
        assert r.wait_seconds == pytest.approx(r.start_time - r.submit_time)
        assert r.wait_seconds >= -1e-9
        # Node counts match rank requirements (32 rank slots per node).
        assert r.n_nodes == -(-r.np_ranks // 32)
        assert 1 <= r.n_nodes <= 4
        # RSS reported on exactly the used nodes.
        rss = [r.max_rss_mb_node0, r.max_rss_mb_node1,
               r.max_rss_mb_node2, r.max_rss_mb_node3]
        assert all(v > 0 for v in rss[: r.n_nodes])
        assert all(v == 0 for v in rss[r.n_nodes:])
        # Controlled variables on their Table I levels.
        assert r.operator in ("poisson1", "poisson2", "poisson2affine")
        assert r.np_ranks in (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
        assert r.freq_ghz in (1.2, 1.5, 1.8, 2.1, 2.4)
        assert 0 <= r.repeat_index <= 2


def test_power_records_energy_consistency(power_dataset):
    for r in power_dataset.records:
        assert r.energy_joules is not None
        assert r.mean_power_watts == pytest.approx(
            r.energy_joules / r.runtime_seconds, rel=1e-6
        )
        # Power plausibility: between idle of 1 node and max of 4 nodes.
        assert 60 <= r.mean_power_watts <= 1400
        assert r.power_records_per_minute >= 10.0  # the paper's rule


def test_runtime_memory_feasibility(performance_dataset):
    """No job violates the memory rule the generator enforces."""
    for r in performance_dataset.records:
        need_gb = r.problem_size * 48.0 / 1e9
        assert need_gb <= r.n_nodes * 120.0 + 1e-9


@given(
    np_ranks=st.sampled_from([1, 8, 32, 128]),
    freq=st.sampled_from([1.2, 1.8, 2.4]),
)
@settings(max_examples=12, deadline=None)
def test_property_any_slice_yields_valid_design_matrix(
    performance_dataset, np_ranks, freq
):
    sub = performance_dataset.subset(
        operator="poisson2", np_ranks=np_ranks, freq_ghz=freq
    )
    if len(sub) == 0:
        return
    X, y = sub.design_matrix(DesignSpec(variables=("problem_size",)))
    assert X.shape == (len(sub), 1)
    assert np.all(np.isfinite(X)) and np.all(np.isfinite(y))
    # Log-size features within the Table I range.
    assert X.min() >= np.log10(1.7e3) - 0.01
    assert X.max() <= np.log10(1.1e9) + 0.01


def test_repeated_configurations_have_distinct_measurements(performance_dataset):
    """Repeats are independent noisy measurements, not copies."""
    from collections import defaultdict

    groups = defaultdict(list)
    for r in performance_dataset.records:
        groups[(r.operator, r.problem_size, r.np_ranks, r.freq_ghz)].append(
            r.runtime_seconds
        )
    multi = [v for v in groups.values() if len(v) > 1]
    assert multi
    distinct = sum(1 for v in multi if len(set(v)) == len(v))
    assert distinct / len(multi) > 0.99
