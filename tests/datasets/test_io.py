"""Tests for CSV persistence of job records."""

import pytest

from repro.datasets import PerfDataset, read_csv, write_csv


def test_roundtrip_power(power_dataset, tmp_path):
    path = write_csv(power_dataset, tmp_path / "power.csv")
    back = read_csv(path)
    assert len(back) == len(power_dataset)
    assert back.records == power_dataset.records


def test_roundtrip_preserves_none_energy(performance_dataset, tmp_path):
    subset = PerfDataset("sub", performance_dataset.records[:20])
    path = write_csv(subset, tmp_path / "perf.csv")
    back = read_csv(path)
    assert back.records == subset.records
    assert all(r.energy_joules is None for r in back.records)


def test_roundtrip_float_exact(power_dataset, tmp_path):
    """repr-based float serialization is bit-exact."""
    subset = PerfDataset("sub", power_dataset.records[:5])
    back = read_csv(write_csv(subset, tmp_path / "x.csv"))
    for a, b in zip(subset.records, back.records):
        assert a.runtime_seconds == b.runtime_seconds
        assert a.energy_joules == b.energy_joules


def test_read_csv_name(power_dataset, tmp_path):
    path = write_csv(power_dataset, tmp_path / "power.csv")
    assert read_csv(path).name == "power"
    assert read_csv(path, name="Power").name == "Power"


def test_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError, match="schema"):
        read_csv(path)


def test_malformed_row_rejected(power_dataset, tmp_path):
    path = write_csv(PerfDataset("s", power_dataset.records[:2]), tmp_path / "x.csv")
    lines = path.read_text().splitlines()
    lines.append("1,2,3")
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="malformed"):
        read_csv(path)


def test_write_creates_parent_dirs(power_dataset, tmp_path):
    subset = PerfDataset("s", power_dataset.records[:1])
    path = write_csv(subset, tmp_path / "deep" / "nested" / "x.csv")
    assert path.exists()
