"""Tests for the dataset-generation campaigns (Table I fidelity)."""

import numpy as np
import pytest

from repro.datasets import (
    MAX_REPEATS,
    PERFORMANCE_N_JOBS,
    POWER_N_JOBS,
    generate_performance_dataset,
    generate_power_dataset,
)
from repro.datasets.generate import (
    DENSE_SLICE_JOBS,
    ModelExecutor,
    feasible_configurations,
)


def test_performance_dataset_size(performance_dataset):
    assert len(performance_dataset) == PERFORMANCE_N_JOBS == 3246


def test_power_dataset_size(power_dataset):
    assert len(power_dataset) == POWER_N_JOBS == 640


def test_dense_slice_matches_paper(performance_dataset):
    """The paper's AL evaluation slice holds 251 jobs (Section V-B3)."""
    sub = performance_dataset.subset(operator="poisson1", np_ranks=32)
    assert len(sub) == DENSE_SLICE_JOBS == 251


def test_runtime_range_matches_table1(performance_dataset):
    lo, hi = performance_dataset.response_range("runtime_seconds")
    # Table I: 0.005 - 458.436 (ours is calibrated, not digit-identical).
    assert 0.002 < lo < 0.01
    assert 250 < hi < 600


def test_power_energy_range_matches_table1(power_dataset):
    lo, hi = power_dataset.response_range("energy_joules")
    # Table I: 6.4e3 - 1.1e5.
    assert 2e3 < lo < 2e4
    assert 5e4 < hi < 5e5


def test_all_factor_levels_exercised(performance_dataset):
    assert performance_dataset.unique_levels("operator") == [
        "poisson1",
        "poisson2",
        "poisson2affine",
    ]
    assert performance_dataset.unique_levels("np_ranks") == [
        1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128,
    ]
    assert performance_dataset.unique_levels("freq_ghz") == [1.2, 1.5, 1.8, 2.1, 2.4]


def test_repeats_capped(performance_dataset):
    from collections import Counter

    counts = Counter(
        (r.operator, r.problem_size, r.np_ranks, r.freq_ghz)
        for r in performance_dataset.records
    )
    assert max(counts.values()) <= MAX_REPEATS
    assert any(v > 1 for v in counts.values())  # repeats actually happen


def test_generation_deterministic():
    a = generate_performance_dataset(seed=99, n_jobs=2750)
    b = generate_performance_dataset(seed=99, n_jobs=2750)
    assert len(a) == len(b) == 2750
    assert [r.runtime_seconds for r in a.records[:50]] == [
        r.runtime_seconds for r in b.records[:50]
    ]


def test_power_jobs_all_usable(power_dataset):
    assert all(r.energy_usable for r in power_dataset.records)
    assert all(r.energy_joules is not None for r in power_dataset.records)
    assert all(r.state == "COMPLETED" for r in power_dataset.records)


def test_power_jobs_long_running(power_dataset):
    """The power campaign excludes short jobs (too few IPMI samples)."""
    lo, _ = power_dataset.response_range("runtime_seconds")
    assert lo > 25.0


def test_feasible_configurations_filtered():
    configs = feasible_configurations()
    from repro.datasets import full_factorial

    assert 0 < len(configs) < len(full_factorial())


def test_model_executor_estimate_noise_free():
    ex = ModelExecutor()
    from repro.cluster import JobSpec

    spec = JobSpec("poisson1", 1e7, 32, 2.4)
    e1 = ex.estimate(spec)
    e2 = ex.estimate(spec)
    assert e1 == e2 > 0


def test_model_executor_execute_noisy():
    ex = ModelExecutor()
    from repro.cluster import JobSpec

    spec = JobSpec("poisson1", 1e7, 32, 2.4)
    rng = np.random.default_rng(0)
    outcomes = {ex.execute(spec, rng).runtime_seconds for _ in range(5)}
    assert len(outcomes) == 5  # measurements differ
    est = ex.estimate(spec)
    for t in outcomes:
        assert 0.5 * est < t < 3.0 * est


def test_power_floor_too_high_rejected():
    with pytest.raises((ValueError, RuntimeError)):
        generate_power_dataset(seed=0, min_runtime_s=400.0)
