"""Tests for the PerfDataset container and design-matrix extraction."""

import numpy as np
import pytest

from repro.datasets import DesignSpec, PerfDataset


def test_subset_by_attributes(performance_dataset):
    sub = performance_dataset.subset(operator="poisson2", np_ranks=16)
    assert len(sub) > 0
    assert all(r.operator == "poisson2" and r.np_ranks == 16 for r in sub)
    assert "poisson2" in sub.name


def test_subset_by_predicate(performance_dataset):
    sub = performance_dataset.subset(lambda r: r.runtime_seconds > 100.0)
    assert all(r.runtime_seconds > 100.0 for r in sub)


def test_subset_combined(performance_dataset):
    sub = performance_dataset.subset(
        lambda r: r.freq_ghz > 2.0, operator="poisson1"
    )
    assert all(r.freq_ghz > 2.0 and r.operator == "poisson1" for r in sub)


def test_design_matrix_log_transforms(performance_dataset):
    sub = performance_dataset.subset(operator="poisson1", np_ranks=32)
    X, y = sub.design_matrix(DesignSpec(variables=("problem_size", "freq_ghz")))
    assert X.shape == (len(sub), 2)
    # Problem size is log10-transformed; freq is not.
    assert X[:, 0].max() < 10.0
    assert set(np.round(X[:, 1], 1)) <= {1.2, 1.5, 1.8, 2.1, 2.4}
    # Response is log10 runtime.
    runtimes = np.array([r.runtime_seconds for r in sub])
    np.testing.assert_allclose(sorted(y), sorted(np.log10(runtimes)))


def test_design_matrix_no_log(performance_dataset):
    sub = performance_dataset.subset(operator="poisson1", np_ranks=32)
    spec = DesignSpec(
        variables=("freq_ghz",), log_features=frozenset(), log_response=False
    )
    X, y = sub.design_matrix(spec)
    assert y.min() > 0  # raw seconds


def test_design_matrix_skips_missing_energy(performance_dataset):
    sub = performance_dataset.subset(operator="poisson1", np_ranks=32)
    with pytest.raises(ValueError, match="no usable records"):
        sub.design_matrix(
            DesignSpec(variables=("freq_ghz",), response="energy_joules")
        )


def test_design_spec_validation():
    with pytest.raises(ValueError):
        DesignSpec(variables=())
    with pytest.raises(ValueError, match="distinct"):
        DesignSpec(variables=("freq_ghz",), categories=("a", "a"))


def test_design_matrix_one_hot_operator(performance_dataset):
    """The categorical operator expands into indicator columns."""
    sub = performance_dataset.subset(np_ranks=32, freq_ghz=2.4)
    spec = DesignSpec(variables=("operator", "problem_size"))
    X, y = sub.design_matrix(spec)
    assert X.shape[1] == spec.n_columns == 4
    assert spec.column_names() == (
        "operator=poisson1",
        "operator=poisson2",
        "operator=poisson2affine",
        "problem_size",
    )
    onehot = X[:, :3]
    np.testing.assert_allclose(onehot.sum(axis=1), 1.0)
    assert set(np.unique(onehot)) == {0.0, 1.0}
    # The indicator matches each record's operator.
    for row, r in zip(onehot, sub.records):
        expected = ["poisson1", "poisson2", "poisson2affine"].index(r.operator)
        assert row[expected] == 1.0


def test_design_matrix_unknown_category_rejected(performance_dataset):
    sub = performance_dataset.subset(np_ranks=32, freq_ghz=2.4)
    spec = DesignSpec(variables=("operator",), categories=("poisson1",))
    with pytest.raises(ValueError, match="not in spec.categories"):
        sub.design_matrix(spec)


def test_full_factor_space_model_learns_operator_cost(performance_dataset):
    """A single GP over all 4 factors resolves the operator cost ordering."""
    from repro.gp import GaussianProcessRegressor, default_kernel

    spec = DesignSpec(
        variables=("operator", "problem_size", "np_ranks", "freq_ghz"),
        log_features=frozenset({"problem_size", "np_ranks"}),
    )
    rng = np.random.default_rng(0)
    idx = rng.choice(len(performance_dataset), size=250, replace=False)
    sub = performance_dataset.subset(lambda r: True)
    sub.records = [sub.records[i] for i in idx]
    X, y = sub.design_matrix(spec)
    model = GaussianProcessRegressor(
        kernel=default_kernel(X.shape[1], ard=True),
        noise_variance=1e-1, noise_variance_bounds=(1e-2, 1e2),
        n_restarts=1, rng=0, normalize_y=True,
    ).fit(X, y)
    base = np.array([0.0, 0.0, 0.0, 8.0, np.log10(32), 2.4])
    preds = []
    for k in range(3):
        q = base.copy()
        q[k] = 1.0
        preds.append(float(model.predict(q[np.newaxis, :])[0]))
    # poisson1 < poisson2 < poisson2affine in predicted log runtime.
    assert preds[0] < preds[1] < preds[2]


def test_costs_metrics(performance_dataset):
    sub = performance_dataset.subset(operator="poisson1", np_ranks=32)
    core_s = sub.costs()
    seconds = sub.costs(metric="seconds")
    np.testing.assert_allclose(core_s, seconds * 32)
    with pytest.raises(ValueError):
        sub.costs(metric="dollars")
    with pytest.raises(ValueError, match="energy"):
        sub.costs(metric="energy")  # perf dataset lacks energy


def test_costs_energy(power_dataset):
    e = power_dataset.costs(metric="energy")
    assert np.all(e > 0)


def test_with_energy_filter(power_dataset, performance_dataset):
    assert len(power_dataset.with_energy()) == len(power_dataset)
    assert len(performance_dataset.with_energy()) == 0


def test_column_and_levels(performance_dataset):
    ops = performance_dataset.column("operator")
    assert ops.dtype == object
    rt = performance_dataset.column("runtime_seconds")
    assert rt.dtype == float
    assert performance_dataset.unique_levels("freq_ghz") == [1.2, 1.5, 1.8, 2.1, 2.4]


def test_response_range_missing():
    ds = PerfDataset(name="empty")
    with pytest.raises(ValueError):
        ds.response_range("runtime_seconds")


def test_extend():
    ds = PerfDataset(name="x")
    assert len(ds) == 0
    ds.extend([])
    assert len(ds) == 0


def test_iteration(performance_dataset):
    first = next(iter(performance_dataset))
    assert first is performance_dataset.records[0]
