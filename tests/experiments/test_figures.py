"""Integration tests: every paper table/figure reproduces its claims.

These use reduced sweep sizes where the paper used 10-50 partitions; the
full-size regenerations live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table1


def test_table1_matches_paper():
    result = table1.run()
    perf, power = result.performance, result.power
    assert perf.n_jobs == 3246
    assert power.n_jobs == 640
    assert perf.operators == ("poisson1", "poisson2", "poisson2affine")
    assert perf.np_levels == (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
    assert perf.freq_levels_ghz == (1.2, 1.5, 1.8, 2.1, 2.4)
    assert perf.runtime_range_s[0] < 0.01
    assert perf.runtime_range_s[1] > 250
    assert power.energy_range_j is not None
    assert "TABLE I" in result.text
    assert "3246" in result.text


def test_fig1_power_noisier_than_performance():
    result = fig1.run()
    assert result.n_performance_points > result.n_power_points
    # The paper's observation: "the variance in the Power dataset is much
    # higher comparing to the Performance dataset".
    assert result.power_relative_noise > 2 * result.performance_relative_noise
    for s in result.series:
        assert s.problem_size.shape == s.freq_ghz.shape == s.values.shape
        assert np.all(s.values > 0)


def test_fig2_loglog_linearity():
    result = fig2.run()
    runtime_fits = [
        f for f in result.fits
        if f.dataset == "Performance" and f.np_ranks in (8, 32)
    ]
    assert runtime_fits
    for fit in runtime_fits:
        # "confirms the linear growth of Runtime along the problem size
        # dimension" in log-log space: slope ~ 1, high R^2.
        assert 0.8 < fit.slope < 1.2
        assert fit.r_squared > 0.95


def test_fig3_hyperparameter_sensitivity():
    result = fig3.run()
    # (a) With all measurements, means nearly coincide...
    assert result.all_points.mean_disagreement() < 0.5
    # ...but smaller length scales widen the confidence interval.
    assert result.all_points.mean_ci_width(0.5) > result.all_points.mean_ci_width(2.0)
    # (b) With 4 points, even the means disagree noticeably.
    assert (
        result.four_points.mean_disagreement()
        > 2 * result.all_points.mean_disagreement()
    )


def test_fig4_unique_lml_peak():
    result = fig4.run()
    assert result.n_local_maxima == 1
    assert result.optima_agree  # single random start finds the same basin
    ls, nv, _ = result.grid.peak()
    assert 0.03 <= ls <= 30.0
    assert result.lml_range > 20  # sharply peaked landscape


def test_fig5_small_data_gpr():
    result = fig5.run()
    # The mean surface sits between the CI surfaces.
    assert np.all(result.ci_low_surface <= result.mean_surface + 1e-9)
    assert np.all(result.mean_surface <= result.ci_high_surface + 1e-9)
    # "further away from the training points ... the confidence interval
    # bounds are further apart": widest candidate far from training data.
    widest = result.widest_candidate()
    dists = np.linalg.norm(result.X_train - widest, axis=1)
    assert dists.min() > 0.3
    # Landscape is shallow compared to Fig. 4's.
    assert result.lml_range < 20


def test_fig6_edge_first_exploration():
    result = fig6.run()
    assert result.subset_size == 251
    assert result.trajectory_10.shape[0] == 10
    assert result.trajectory_100.shape[0] == 100
    # "AL chooses experiments at the edges" first.
    assert result.early_edge_fraction >= 0.8
    assert result.early_edge_fraction > result.pool_edge_fraction


def test_fig7_noise_floor_ablation():
    result = fig7.run(n_partitions=4, n_iterations=25)
    low, high = result.low_floor, result.high_floor
    # With sigma_n^2 >= 1e-1 the SD can never fall below sqrt(0.1) ~ 0.316.
    assert high.min_early_sd_selected >= np.sqrt(1e-1) * 0.99
    assert high.min_early_amsd >= np.sqrt(1e-1) * 0.99
    # With the 1e-8 floor, early-iteration overfitting collapses the SD.
    assert low.min_early_sd_selected < high.min_early_sd_selected
    assert result.collapse_eliminated
    # Both settings still converge in RMSE.
    assert low.final_mean_rmse < 1.0
    assert high.final_mean_rmse < 1.0


def test_fig7_amsd_converges():
    result = fig7.run(n_partitions=4, n_iterations=25)
    amsd = result.high_floor.batch.mean_series("amsd")
    # Converged tail: last 5 iterations vary by < 10%.
    tail = amsd[-5:]
    assert (tail.max() - tail.min()) / tail.max() < 0.1


@pytest.fixture(scope="module")
def fig8_result():
    return fig8.run(n_partitions=6, n_iterations=60)


def test_fig8_cost_efficiency_cheaper_per_iteration(fig8_result):
    vr_cost = fig8_result.variance_reduction.mean_series("cumulative_cost")
    ce_cost = fig8_result.cost_efficiency.mean_series("cumulative_cost")
    # Cost Efficiency spends far less for the same iteration count.
    assert ce_cost[-1] < 0.5 * vr_cost[-1]


def test_fig8_tradeoff_crossover_and_reduction(fig8_result):
    comp = fig8_result.comparison
    assert comp.crossover is not None
    # The paper reports a 38% peak reduction; the synthetic testbed must
    # show a sustained double-digit advantage past the crossover.
    assert comp.max_reduction > 0.10
    assert any(r > 0.10 for r in comp.reductions_at_multiples.values())


def test_fig8_curves_shapes(fig8_result):
    vr, ce = fig8_result.vr_curve, fig8_result.ce_curve
    assert vr.strategy == "variance-reduction"
    assert ce.strategy == "cost-efficiency"
    # Per-iteration RMSE can fluctuate, but the averaged curves must trend
    # strongly downward over the full cost range.
    assert vr.errors[-1] < 0.3 * vr.errors[0]
    assert ce.errors[-1] < 0.5 * ce.errors[0]
    # Upward blips stay small relative to the overall decrease.
    assert np.diff(vr.errors).max() < 0.2 * (vr.errors[0] - vr.errors[-1])


def test_fig8_rmse_converges_for_both(fig8_result):
    vr_rmse = fig8_result.variance_reduction.mean_series("rmse")
    ce_rmse = fig8_result.cost_efficiency.mean_series("rmse")
    assert vr_rmse[-1] < 0.3 * vr_rmse[0]
    assert ce_rmse[-1] < 0.5 * ce_rmse[0]
