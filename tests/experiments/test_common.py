"""Tests for the shared experiment context (caching, determinism)."""

import numpy as np

from repro.experiments import common


def test_dataset_accessors_are_cached():
    a = common.performance_dataset()
    b = common.performance_dataset()
    assert a is b
    assert common.power_dataset() is common.power_dataset()


def test_fig6_subset_shape_and_determinism():
    X1, y1, c1 = common.fig6_subset()
    X2, y2, c2 = common.fig6_subset()
    assert X1.shape == (251, 2)
    np.testing.assert_array_equal(X1, X2)
    np.testing.assert_array_equal(y1, y2)
    np.testing.assert_array_equal(c1, c2)
    # Features: (log10 size, GHz).
    assert 3.0 < X1[:, 0].min() < X1[:, 0].max() < 9.5
    assert set(np.round(X1[:, 1], 1)) == {1.2, 1.5, 1.8, 2.1, 2.4}
    assert np.all(c1 > 0)


def test_one_d_subset():
    X, y = common.one_d_subset()
    assert X.shape[1] == 1
    # The 1-D cross-section (NP=32, 2.4 GHz, poisson1) has all 17 sizes,
    # most with multiple repeats.
    assert X.shape[0] > 17
    assert len(np.unique(X[:, 0])) == 17


def test_default_seed_constant():
    assert common.DEFAULT_SEED == 2016
