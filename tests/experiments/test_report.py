"""Tests for the textual report renderers behind ``python -m repro``."""

import pytest

from repro.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    report,
    table1,
)


def test_render_table1():
    text = report.render_table1(table1.run())
    assert "TABLE I" in text
    assert "3246" in text and "640" in text


def test_render_fig1():
    text = report.render_fig1(fig1.run())
    assert "poisson1" in text
    assert "noise" in text


def test_render_fig2():
    text = report.render_fig2(fig2.run())
    assert "slope" in text
    assert "Performance" in text


def test_render_fig3():
    text = report.render_fig3(fig3.run())
    assert "(a) all measurements" in text
    assert "(b) 4 random points" in text
    assert "panel (a), l=1.0" in text


def test_render_fig4():
    text = report.render_fig4(fig4.run())
    assert "unique" in text
    assert "X = maximum" in text


def test_render_fig5():
    text = report.render_fig5(fig5.run())
    assert "widest-CI candidate" in text
    assert "shallow" in text


def test_render_fig6():
    text = report.render_fig6(fig6.run())
    assert "251" in text
    assert "boundary" in text


@pytest.mark.parametrize("renderer,module,kwargs", [
    (report.render_fig7, fig7, dict(n_partitions=3, n_iterations=12)),
    (report.render_fig8, fig8, dict(n_partitions=3, n_iterations=25)),
])
def test_render_al_figures(renderer, module, kwargs):
    text = renderer(module.run(**kwargs))
    assert "Fig." in text
    assert "|" in text  # contains an ASCII chart
