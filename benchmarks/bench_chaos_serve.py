"""Chaos soak: publish -> serve -> rollover -> fsck under filesystem faults.

The acceptance scenario for the robustness layer: a publisher pushes
versions into a registry whose disk corrupts ~10% of the writes (torn
write / truncation / bit flip / slow read, via
:class:`repro.cluster.faults.FilesystemFaultInjector`), while an
auto-refreshing :class:`~repro.serve.PredictionService` answers query
blocks throughout and ``fsck`` runs periodically like a cron job.

Reported and asserted:

* **availability** — fraction of query blocks answered (>= 99%);
* **corrupt answers** — query blocks whose served mean differs from the
  in-memory model of the version the service *claims* it served (must be
  exactly 0: checksums + last-known-good fallback, not luck);
* **fsck** — the final pass leaves a servable registry with every
  corrupted version quarantined into ``corrupt/``;
* **worker kills** — a process-backend map whose worker is SIGKILL'd
  mid-sweep finishes bit-identical to the fault-free serial run.

Runs standalone for CI (``python benchmarks/bench_chaos_serve.py
--quick``; exit 0 iff every acceptance bar holds) or under
pytest-benchmark like the other benches.
"""

import argparse
import os
import signal
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster.faults import FilesystemFaultInjector, FsFaultConfig
from repro.gp import GaussianProcessRegressor
from repro.parallel import ParallelMap
from repro.serve import ModelRegistry, PredictionService


def _fitted(n_train, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_train, 3))
    y = np.sin(X @ np.array([1.0, 2.0, 0.5])) + 0.02 * rng.standard_normal(n_train)
    return GaussianProcessRegressor(rng=0, n_restarts=1, normalize_y=True).fit(X, y)


def chaos_serve(workdir, *, n_publishes=40, queries_per_cycle=3, seed=0):
    """Drive the publish/serve/corrupt/fsck loop; return the scoreboard."""
    workdir = Path(workdir)
    registry = ModelRegistry(workdir / "reg")
    injector = FilesystemFaultInjector(
        FsFaultConfig(
            torn_write_rate=0.04,
            truncation_rate=0.03,
            bit_flip_rate=0.02,
            slow_read_rate=0.01,
            slow_read_seconds=0.002,
        ),
        rng=seed,
    )
    # A small pool of distinct fitted models, published round-robin; the
    # in-memory object for each version is the ground truth a served
    # answer is bit-compared against.
    pool = [_fitted(40 + 10 * i, seed=i) for i in range(4)]
    by_version = {}

    meta = registry.publish(pool[0])
    by_version[meta.version] = pool[0]
    service = PredictionService(registry, auto_refresh=True)
    Q = np.random.default_rng(99).uniform(size=(200, 3))

    answered = corrupt_answers = failed = 0
    for cycle in range(n_publishes):
        meta = registry.publish(pool[cycle % len(pool)])
        by_version[meta.version] = pool[cycle % len(pool)]
        kind = injector.inject(registry._version_path(meta.version))
        if kind == "slow_read":
            time.sleep(injector.config.slow_read_seconds)
        for _ in range(queries_per_cycle):
            try:
                mean = service.predict(Q)
            except Exception:
                failed += 1
                continue
            answered += 1
            reference = by_version[service.version].predict(Q)
            if not np.array_equal(mean, reference):
                corrupt_answers += 1
        if cycle % 10 == 9:
            registry.fsck()
    report = registry.fsck()
    total = answered + failed
    return {
        "queries": total,
        "answered": answered,
        "availability": answered / total,
        "corrupt_answers": corrupt_answers,
        "injected": injector.stats.n_corruptions,
        "slow_reads": injector.stats.n_slow_reads,
        "quarantined": len(registry.quarantined()),
        "served_versions": len(by_version),
        "servable": report.servable,
        "rollovers": service.n_rollovers,
        "degraded": service.degraded,
    }


class _KillWorkerOnce:
    """SIGKILL the worker on the first attempt at one item (marker-gated)."""

    def __init__(self, marker, victim):
        self.marker = marker
        self.victim = victim

    def __call__(self, x):
        if x == self.victim and not Path(self.marker).exists():
            Path(self.marker).write_text("killed")
            os.kill(os.getpid(), signal.SIGKILL)
        return float(np.sin(x) * x)


def _square_chaos_free(x):
    return float(np.sin(x) * x)


def worker_kill_sweep(workdir, *, n_tasks=8):
    """Process map with a SIGKILL'd worker vs the fault-free serial run."""
    task = _KillWorkerOnce(str(Path(workdir) / "killed"), victim=n_tasks // 2)
    pm = ParallelMap("process", n_workers=2, max_task_retries=3)
    t0 = time.perf_counter()
    chaotic = pm.map(task, list(range(n_tasks)))
    elapsed = time.perf_counter() - t0
    clean = [_square_chaos_free(x) for x in range(n_tasks)]
    return {
        "n_tasks": n_tasks,
        "kill_happened": (Path(workdir) / "killed").exists(),
        "bit_identical": chaotic == clean,
        "seconds": elapsed,
    }


def _check(scoreboard, kills) -> list:
    problems = []
    if scoreboard["availability"] < 0.99:
        problems.append(f"availability {scoreboard['availability']:.4f} < 0.99")
    if scoreboard["corrupt_answers"]:
        problems.append(f"{scoreboard['corrupt_answers']} corrupt answers")
    if not scoreboard["servable"]:
        problems.append("registry not servable after fsck")
    if not kills["kill_happened"]:
        problems.append("worker kill never fired")
    if not kills["bit_identical"]:
        problems.append("worker-kill sweep diverged from fault-free run")
    return problems


def _print_report(scoreboard, kills, banner_fn=None) -> None:
    if banner_fn:
        banner_fn("chaos soak: serving under filesystem faults + worker kills")
    print(
        f"queries answered:   {scoreboard['answered']}/{scoreboard['queries']} "
        f"({scoreboard['availability']:.2%} availability)"
    )
    print(f"corrupt answers:    {scoreboard['corrupt_answers']}")
    print(
        f"faults injected:    {scoreboard['injected']} corruptions, "
        f"{scoreboard['slow_reads']} slow reads"
    )
    print(
        f"fsck:               {scoreboard['quarantined']} quarantined, "
        f"servable={scoreboard['servable']}"
    )
    print(
        f"rollovers:          {scoreboard['rollovers']} across "
        f"{scoreboard['served_versions']} published versions"
    )
    print(
        f"worker-kill sweep:  {kills['n_tasks']} tasks, kill fired, "
        f"bit-identical={kills['bit_identical']} ({kills['seconds']:.1f}s)"
    )


# ------------------------------------------------------------- pytest benches


def test_chaos_serve_soak(once, tmp_path):
    scoreboard = once(chaos_serve, tmp_path, n_publishes=20)
    kills = worker_kill_sweep(tmp_path)
    from conftest import banner

    _print_report(scoreboard, kills, banner_fn=banner)
    assert _check(scoreboard, kills) == []


# ---------------------------------------------------------------- script mode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized soak (20 publish cycles)")
    parser.add_argument("--publishes", type=int, default=None,
                        help="override the number of publish cycles")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    n_publishes = args.publishes or (20 if args.quick else 60)
    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        scoreboard = chaos_serve(workdir, n_publishes=n_publishes, seed=args.seed)
        kills = worker_kill_sweep(workdir)
    else:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            scoreboard = chaos_serve(tmp, n_publishes=n_publishes, seed=args.seed)
            kills = worker_kill_sweep(tmp)
    _print_report(scoreboard, kills)
    problems = _check(scoreboard, kills)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("chaos soak: all acceptance bars hold")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
