"""Bench: Fig. 6 — Variance-Reduction AL trajectories (10 / 100 iterations).

Paper: "In a star-like pattern, AL chooses experiments at the edges and,
only after exhausting all edge points, progresses toward the middle."
"""

import numpy as np
from conftest import banner

from repro.experiments import fig6
from repro.viz import line_chart


def test_fig6(once):
    result = once(fig6.run)
    banner("FIG 6 — AL exploration pattern (paper: edge-first, star-like)")
    print(f"subset size: {result.subset_size} jobs (paper: 251)")
    print(f"first 10 selections on the domain boundary: "
          f"{result.early_edge_fraction:.0%} "
          f"(pool boundary share: {result.pool_edge_fraction:.0%})")
    print("\nfirst 10 visited (log10 size, GHz):")
    for i, x in enumerate(result.trajectory_10):
        print(f"  {i + 1:2d}: ({x[0]:.2f}, {x[1]:.1f})")
    print()
    print(line_chart(
        {
            ". pool": (result.X_pool[:, 0], result.X_pool[:, 1]),
            "o first 10": (result.trajectory_10[:, 0], result.trajectory_10[:, 1]),
            "+ next 90": (result.trajectory_100[10:, 0], result.trajectory_100[10:, 1]),
        },
        title="visited candidates in the (size, frequency) plane",
        x_label="log10 problem size", y_label="GHz",
    ))
    assert result.early_edge_fraction > result.pool_edge_fraction
