"""Ablation: batch size vs simulated wall-clock in online campaigns (§VI).

The paper: "some experiments could reasonably be run in parallel which adds
additional scheduling concerns and may indicate a less greedy selection
strategy."  This bench runs online campaigns at a fixed experiment budget
and varying batch size through the 4-node cluster simulator, measuring the
simulated wall-clock (scheduler makespan) and the final model quality on a
held-out probe grid.
"""

import numpy as np
from conftest import banner

from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.datasets.generate import ModelExecutor
from repro.perfmodel import RuntimeModel


def _candidates():
    sizes = [32**3, 64**3, 96**3, 128**3, 192**3, 256**3]
    nps = [1, 4, 16, 32, 64, 128]
    freqs = [1.2, 1.8, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


def _probe_rmse(model) -> float:
    rm = RuntimeModel()
    rng = np.random.default_rng(99)
    rows = _candidates()[rng.choice(len(_candidates()), 40, replace=False)]
    X = np.column_stack(
        [np.log10(rows[:, 0]), np.log2(rows[:, 1]), rows[:, 2]]
    )
    truth = np.log10(
        [float(rm.runtime("poisson1", s, int(p), f)) for s, p, f in rows]
    )
    pred = model.predict(X)
    return float(np.sqrt(np.mean((pred - truth) ** 2)))


def _sweep(budget=16):
    rows = []
    for batch_size in (1, 2, 4, 8):
        n_rounds = budget // batch_size
        campaign = OnlineCampaign(
            CampaignConfig(
                operator="poisson1",
                candidates=_candidates(),
                batch_size=batch_size,
                n_rounds=n_rounds,
            ),
            ModelExecutor(),
            rng=3,
        )
        result = campaign.run()
        rows.append(
            (
                batch_size,
                result.X.shape[0],
                result.simulated_seconds,
                result.cpu_core_seconds,
                _probe_rmse(result.model),
            )
        )
    return rows


def test_campaign_batching(once):
    rows = once(_sweep)
    banner("ABLATION — online campaign batch size (16-experiment budget)")
    print(f"{'batch':>6} {'jobs':>5} {'sim wall-clock s':>17} "
          f"{'core-seconds':>13} {'probe RMSE':>11}")
    for batch, jobs, wall, core_s, rmse in rows:
        print(f"{batch:>6} {jobs:>5} {wall:>17,.1f} {core_s:>13,.0f} "
              f"{rmse:>11.4f}")
    walls = {batch: wall for batch, _, wall, _, _ in rows}
    rmses = {batch: rmse for batch, _, _, _, rmse in rows}
    # Parallel batches must cut the simulated wall-clock materially...
    assert walls[4] < 0.8 * walls[1]
    # ...without leaving the useful-model regime.
    assert rmses[8] < 5 * rmses[1] + 0.2