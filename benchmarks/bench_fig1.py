"""Bench: Fig. 1 — raw dataset subsets (poisson1, selected NP levels).

The paper's takeaways: the Power dataset is sparser and visibly noisier
than the Performance dataset.
"""

import numpy as np
from conftest import banner

from repro.experiments import fig1


def test_fig1(once):
    result = once(fig1.run)
    banner("FIG 1 — dataset subsets (operator=poisson1)")
    print(f"{'dataset':>12} {'response':>16} {'NP':>4} {'points':>7} "
          f"{'min':>12} {'max':>12}")
    for s in result.series:
        print(f"{s.dataset:>12} {s.response:>16} {s.np_ranks:>4} "
              f"{s.values.size:>7} {s.values.min():>12.4g} {s.values.max():>12.4g}")
    print(f"\nrelative repeat-to-repeat noise: "
          f"Performance {result.performance_relative_noise:.1%}, "
          f"Power {result.power_relative_noise:.1%} "
          f"(paper: Power visibly noisier)")
    assert result.power_relative_noise > result.performance_relative_noise
