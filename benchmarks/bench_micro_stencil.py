"""Micro-benchmark: matrix-free stencil apply vs assembled CSR SpMV.

The real HPGMG applies its operators matrix-free; this bench measures the
same tradeoff in our mini version for the ``poisson1`` flavour across grid
sizes (plus the one-time assembly cost the matrix-free path avoids).
"""

import pytest

from repro.hpgmg import assemble, make_problem
from repro.hpgmg.stencil import StencilOperator


@pytest.fixture(scope="module")
def setup():
    import numpy as np

    problem = make_problem("poisson1")
    out = {}
    for ne in (64, 256):
        mesh = problem.mesh(ne)
        sparse_op = assemble(problem, mesh)
        stencil_op = StencilOperator(problem=problem, mesh=mesh)
        u = np.random.default_rng(0).standard_normal(sparse_op.n)
        out[ne] = (sparse_op, stencil_op, u)
    return out


@pytest.mark.parametrize("ne", [64, 256])
def test_csr_apply(benchmark, setup, ne):
    sparse_op, _, u = setup[ne]
    result = benchmark(lambda: sparse_op.A @ u)
    assert result.shape == u.shape


@pytest.mark.parametrize("ne", [64, 256])
def test_stencil_apply(benchmark, setup, ne):
    _, stencil_op, u = setup[ne]
    result = benchmark(stencil_op.apply, u)
    assert result.shape == u.shape


def test_assembly_vs_stencil_setup(benchmark):
    """The setup cost the matrix-free path avoids entirely."""
    problem = make_problem("poisson1")
    mesh = problem.mesh(256)
    op = benchmark(assemble, problem, mesh)
    assert op.n == mesh.n_interior
