"""Robustness: guardrails keep a chaos campaign useful (ISSUE 4).

One seeded chaos scenario — performance drift (every runtime 10x slower
after job 12, as after a thermal throttle or a mis-deployed library) plus
one crash-prone node — run three ways:

* **fault-free** — the same campaign with a clean executor (the yardstick);
* **guarded** — guardrails on (model health checks with last-known-good
  rollback, residual drift detection with trimming, campaign watchdog)
  plus the node circuit breaker, recording a telemetry trace;
* **bare** — identical faults, no guardrails, no breaker.

Post-drift the cluster genuinely is 10x slower, so models are scored on
the *drifted* truth (log10 truth + log10 drift factor) over a held-out
probe grid; the fault-free yardstick is scored on clean truth.  The
guarded campaign must trim its way back to the new regime (RMSE within
25% of fault-free) while the bare campaign trains on a mixed-regime set
and lands materially worse.
"""

import tempfile
from pathlib import Path

import numpy as np
from conftest import banner

from repro import telemetry
from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.al.guardrails import DriftConfig, GuardrailConfig, HealthConfig
from repro.cluster import BreakerConfig
from repro.cluster.faults import FaultConfig, FaultyExecutor
from repro.datasets.generate import ModelExecutor
from repro.perfmodel import RuntimeModel
from repro.telemetry.summarize import read_trace, summarize_trace, validate_trace

DRIFT_FACTOR = 10.0
DRIFT_AFTER = 12
CRASH_NODE = {0: 0.9}
SEED = 7


def _candidates():
    # Single-node jobs only (<= 32 ranks): the scheduler must be able to
    # route around the crash-prone node once the breaker opens it.
    sizes = [32**3, 64**3, 96**3, 128**3, 192**3, 256**3]
    nps = [1, 4, 16, 32]
    freqs = [1.2, 1.8, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


def _probe_rmse(model, *, drifted: bool) -> float:
    rm = RuntimeModel()
    rng = np.random.default_rng(99)
    rows = _candidates()[rng.choice(len(_candidates()), 40, replace=False)]
    X = np.column_stack(
        [np.log10(rows[:, 0]), np.log2(rows[:, 1]), rows[:, 2]]
    )
    truth = np.log10(
        [float(rm.runtime("poisson1", s, int(p), f)) for s, p, f in rows]
    )
    if drifted:
        truth = truth + np.log10(DRIFT_FACTOR)
    pred = model.predict(X)
    return float(np.sqrt(np.mean((pred - truth) ** 2)))


def _config():
    return CampaignConfig(
        operator="poisson1",
        candidates=_candidates(),
        batch_size=3,
        n_rounds=10,
    )


def _chaos_executor():
    return FaultyExecutor(
        ModelExecutor(),
        FaultConfig(
            drift_after_jobs=DRIFT_AFTER,
            drift_factor=DRIFT_FACTOR,
            node_crash_rates=CRASH_NODE,
        ),
    )


def _guard_config():
    # Stricter-than-default health gate: the drift transition leaves the
    # training set mixed-regime, which shows up as a per-point LML drop
    # before the changepoint detector has enough post-drift samples.
    return GuardrailConfig(
        health=HealthConfig(max_lml_drop_per_point=0.15),
        drift=DriftConfig(threshold=6.0),
    )


def _run_fault_free():
    result = OnlineCampaign(_config(), ModelExecutor(), rng=SEED).run()
    return result, _probe_rmse(result.model, drifted=False)


def _run_guarded(trace_path: str):
    campaign = OnlineCampaign(
        _config(),
        _chaos_executor(),
        rng=SEED,
        guardrails=_guard_config(),
        breaker=BreakerConfig(failure_threshold=2, cooldown_seconds=3600.0),
    )
    with telemetry.session(trace_path):
        result = campaign.run()
    return result, _probe_rmse(result.model, drifted=True)


def _run_bare():
    result = OnlineCampaign(_config(), _chaos_executor(), rng=SEED).run()
    return result, _probe_rmse(result.model, drifted=True)


def _sweep():
    trace_path = str(Path(tempfile.mkdtemp()) / "chaos.jsonl")
    clean, rmse_clean = _run_fault_free()
    guarded, rmse_guarded = _run_guarded(trace_path)
    bare, rmse_bare = _run_bare()
    return {
        "clean": (clean, rmse_clean),
        "guarded": (guarded, rmse_guarded),
        "bare": (bare, rmse_bare),
        "trace_path": trace_path,
    }


def test_guardrails_keep_chaos_campaign_useful(once):
    out = once(_sweep)
    clean, rmse_clean = out["clean"]
    guarded, rmse_guarded = out["guarded"]
    bare, rmse_bare = out["bare"]
    tallies = guarded.guardrails

    banner("GUARDRAILS — seeded chaos campaign (drift + crash-prone node)")
    print(f"{'mode':>10} {'stop':>12} {'obs':>4} {'sim wall s':>11} "
          f"{'probe RMSE':>11}")
    for mode, (result, rmse) in (
        ("clean", out["clean"]), ("guarded", out["guarded"]),
        ("bare", out["bare"]),
    ):
        print(f"{mode:>10} {result.stop_reason:>12} {len(result.y):>4} "
              f"{result.simulated_seconds:>11,.0f} {rmse:>11.4f}")
    print(
        f"guarded interventions: {tallies.n_unhealthy_fits} unhealthy fits, "
        f"{tallies.n_rollbacks} rollbacks, {tallies.n_drift_events} drift "
        f"events ({tallies.n_trimmed_points} trimmed), "
        f"{tallies.n_breaker_opens} breaker opens"
    )

    # The guarded chaos campaign completes and every guardrail layer fired.
    assert guarded.stop_reason == "completed"
    assert tallies.n_rollbacks >= 1
    assert tallies.n_breaker_opens >= 1
    assert tallies.n_drift_events >= 1

    # ...and the trace agrees: the interventions are in telemetry, and the
    # trace itself is schema-valid.
    events = read_trace(out["trace_path"])
    assert validate_trace(events) == []
    counters = summarize_trace(events)["metrics"]["counters"]
    assert counters.get("guardrail.rollback", 0) >= 1
    assert counters.get("breaker.open", 0) >= 1
    assert counters.get("guardrail.drift", 0) >= 1

    # Guardrails recover the new regime: within 25% of the fault-free run.
    assert rmse_guarded <= 1.25 * rmse_clean
    # Without them the same chaos leaves a materially worse model.
    assert rmse_bare > 1.5 * rmse_guarded
