"""Micro-benchmarks: GPR fit/predict scaling.

The paper defers "computational requirements and the scalability of these
algorithms" to future work; these benches provide the numbers for our
implementation: fit cost grows with the O(n^3) Cholesky + O(n^2 d) kernel,
prediction with O(n m).
"""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor


def _data(n, d=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, d))
    y = np.sin(X[:, 0]) + 0.1 * rng.standard_normal(n)
    return X, y


@pytest.mark.parametrize("n", [50, 100, 200])
def test_fit_scaling(benchmark, n):
    X, y = _data(n)
    model = GaussianProcessRegressor(rng=0, n_restarts=1)
    benchmark(lambda: GaussianProcessRegressor(rng=0, n_restarts=1).fit(X, y))
    model.fit(X, y)
    assert model.fitted


@pytest.mark.parametrize("n", [50, 200])
def test_predict_with_std(benchmark, n):
    X, y = _data(n)
    model = GaussianProcessRegressor(rng=0, n_restarts=0).fit(X, y)
    Xq = _data(500, seed=1)[0]
    mean, sd = benchmark(model.predict, Xq, return_std=True)
    assert mean.shape == (500,)
    assert np.all(sd > 0)


def test_lml_gradient_evaluation(benchmark):
    X, y = _data(150)
    model = GaussianProcessRegressor(rng=0, n_restarts=0).fit(X, y)
    theta = model._theta()
    lml, grad = benchmark(
        model.log_marginal_likelihood, theta, eval_gradient=True
    )
    assert np.isfinite(lml)
    assert grad.shape == theta.shape
