"""Shared benchmark configuration.

Every experiment bench prints the same rows/series the paper's table or
figure reports, then returns; pytest-benchmark measures the wall time of
one full regeneration (``rounds=1`` — these are experiments, not
microkernels).  Dataset generation is process-cached, so the first bench
pays the ~20 s campaign cost once.
"""

import pytest


def pytest_configure(config):
    """Show each bench's printed rows/series in the run report.

    Benches print the same rows the paper's exhibit shows; surfacing them
    for *passed* tests (the ``P`` report flag) makes
    ``pytest benchmarks/ --benchmark-only`` self-contained.
    """
    config.option.reportchars = (config.option.reportchars or "") + "P"


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run


def banner(title: str) -> None:
    """Print a section banner above a bench's output rows."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
