"""Ablation: Bayesian LML vs leave-one-out pseudo-likelihood model selection.

Section III names both routes (Rasmussen & Williams Ch. 5) and leaves the
empirical comparison to future work — this bench runs it: fit the same
training subsets with both objectives and compare held-out RMSE/NLPD.
"""

import numpy as np
from conftest import banner

from repro.al.metrics import nlpd, rmse
from repro.experiments.common import fig6_subset
from repro.gp import GaussianProcessRegressor, fit_loocv


def _compare(X, y, train_sizes=(8, 20, 50), n_reps=3):
    rng = np.random.default_rng(0)
    rows = []
    for n_train in train_sizes:
        for rep in range(n_reps):
            idx = rng.permutation(X.shape[0])
            tr, te = idx[:n_train], idx[n_train : n_train + 50]

            lml_model = GaussianProcessRegressor(
                noise_variance=1e-1, noise_variance_bounds=(1e-2, 1e2),
                n_restarts=2, rng=rep,
            ).fit(X[tr], y[tr])

            loo_model = GaussianProcessRegressor(
                noise_variance=1e-1, noise_variance_bounds=(1e-2, 1e2),
                n_restarts=2, rng=rep,
            )
            fit_loocv(loo_model, X[tr], y[tr], n_restarts=1)

            rows.append(
                (
                    n_train,
                    rmse(lml_model, X[te], y[te]),
                    rmse(loo_model, X[te], y[te]),
                    nlpd(lml_model, X[te], y[te]),
                    nlpd(loo_model, X[te], y[te]),
                )
            )
    return rows


def test_lml_vs_loocv(once):
    X, y, _ = fig6_subset()
    rows = once(_compare, X, y)
    banner("ABLATION — LML vs LOO-CV model selection (paper future work)")
    print(f"{'n_train':>8} {'RMSE(LML)':>10} {'RMSE(LOO)':>10} "
          f"{'NLPD(LML)':>10} {'NLPD(LOO)':>10}")
    for n_train, r_lml, r_loo, n_lml, n_loo in rows:
        print(f"{n_train:>8} {r_lml:>10.4f} {r_loo:>10.4f} "
              f"{n_lml:>10.3f} {n_loo:>10.3f}")
    arr = np.asarray(rows)
    print(f"\nmean RMSE: LML {arr[:, 1].mean():.4f} vs LOO {arr[:, 2].mean():.4f}")
    print(f"mean NLPD: LML {arr[:, 3].mean():.3f} vs LOO {arr[:, 4].mean():.3f}")
    # Both selection routes must produce usable models on this data.
    assert arr[:, 1:3].max() < 1.0
