"""Solver-backend crossover: fit/predict time and accuracy per backend.

Produces the measurements behind ``repro.gp.solvers.AUTO_EXACT_MAX`` — the
training-set size where ``solver="auto"`` stops using the exact O(n^3)
solver and switches to Nystrom.  For each pool size the sweep fits every
backend on the same synthetic data and reports fit seconds, predict
seconds, RMSE against the noise-free ground truth, and the recorded
exact-vs-approximate error budget.

Two entry points:

* ``pytest benchmarks/bench_solver_crossover.py --benchmark-only`` — the
  reduced sweep used alongside the other benches.
* ``python benchmarks/bench_solver_crossover.py [--quick]`` — standalone,
  no pytest plugins needed; ``--quick`` is the CI smoke configuration.
"""

import argparse
import sys
import time

import numpy as np

from repro.gp import AUTO_EXACT_MAX, GaussianProcessRegressor

BACKENDS = ("exact", "nystrom", "rff")

# (sizes, largest n the exact solver is asked to fit)
FULL_SIZES = (200, 500, 1000, 2000, 4000)
FULL_EXACT_MAX = 2000
QUICK_SIZES = (150, 300, 600)
QUICK_EXACT_MAX = 600


def _banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _data(n, d=2, seed=0, noise=0.1):
    """Synthetic pool: smooth 2-D surface (the paper's configuration-space
    dimensionality) + homoscedastic noise."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 10.0, size=(n, d))
    f = np.sin(X[:, 0]) + 0.5 * np.cos(0.7 * X[:, 1])
    y = f + noise * rng.standard_normal(n)
    return X, y, f


def sweep(sizes, exact_max, n_test=512, n_restarts=0):
    """Fit every backend at every size; return printable result rows."""
    rows = []
    Xq, _, fq = _data(n_test, seed=10_001)
    for n in sizes:
        X, y, _ = _data(n, seed=n)
        for backend in BACKENDS:
            if backend == "exact" and n > exact_max:
                continue
            # The paper's robust settings (noise floor) — without a floor
            # the fit absorbs noise into tiny length scales, whose huge
            # effective rank no fixed-size approximation can track.
            model = GaussianProcessRegressor(
                noise_variance=1e-2, noise_variance_bounds=(1e-2, 1e2),
                rng=0, n_restarts=n_restarts, solver=backend,
            )
            t0 = time.perf_counter()
            model.fit(X, y)
            fit_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            mean, sd = model.predict(Xq, return_std=True)
            pred_s = time.perf_counter() - t0
            rmse = float(np.sqrt(np.mean((mean - fq) ** 2)))
            budget = (model.solver_info or {}).get("error_budget") or {}
            rows.append(
                {
                    "n": n,
                    "backend": backend,
                    "fit_s": fit_s,
                    "pred_s": pred_s,
                    "rmse": rmse,
                    "max_mean_err": budget.get("max_mean_err"),
                    "within_budget": budget.get("within_budget"),
                }
            )
    return rows


def crossover_n(rows):
    """Largest measured n where the exact fit stays within 25% of the
    fastest approximate build (exactness breaks near-ties)."""
    best = None
    for n in sorted({r["n"] for r in rows}):
        at_n = {r["backend"]: r["fit_s"] for r in rows if r["n"] == n}
        if "exact" not in at_n:
            break
        if at_n["exact"] <= 1.25 * min(
            v for k, v in at_n.items() if k != "exact"
        ):
            best = n
    return best


def print_rows(rows):
    print(
        f"{'n':>6} {'backend':>8} {'fit s':>9} {'pred s':>8} "
        f"{'rmse':>8} {'budget max_mean_err':>20}"
    )
    for r in rows:
        err = r["max_mean_err"]
        err_s = "(unchecked)" if err is None else f"{err:.4f}"
        if r["within_budget"] is False:
            err_s += " BLOWN"
        print(
            f"{r['n']:>6} {r['backend']:>8} {r['fit_s']:>9.3f} "
            f"{r['pred_s']:>8.4f} {r['rmse']:>8.4f} {err_s:>20}"
        )
    cross = crossover_n(rows)
    print()
    print(f"measured exact-within-25%-of-fastest up to n = {cross}")
    print(
        f"shipping auto-mode threshold AUTO_EXACT_MAX = {AUTO_EXACT_MAX} "
        "(exact tolerated past the strict time crossover for its "
        "approximation-free posterior; see repro/gp/solvers.py)"
    )


def _check(rows):
    """Sanity assertions shared by pytest and the standalone smoke run."""
    assert rows, "sweep produced no measurements"
    for r in rows:
        assert np.isfinite(r["fit_s"]) and np.isfinite(r["rmse"]), r
    # Every checked approximate fit must respect its declared budget.
    blown = [r for r in rows if r["within_budget"] is False]
    assert not blown, f"error budget exceeded: {blown}"
    # Approximate accuracy stays comparable to exact at the largest
    # common size (2x headroom: these are stochastic approximations).
    biggest = max(r["n"] for r in rows if r["backend"] == "exact")
    at_n = {r["backend"]: r["rmse"] for r in rows if r["n"] == biggest}
    for backend in ("nystrom", "rff"):
        assert at_n[backend] <= 2.0 * at_n["exact"] + 0.05, at_n


def test_solver_crossover(once):
    rows = once(sweep, QUICK_SIZES, QUICK_EXACT_MAX)
    _banner("SOLVER CROSSOVER — fit/predict time and RMSE per backend")
    print_rows(rows)
    _check(rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration (small sizes, seconds not minutes)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    exact_max = QUICK_EXACT_MAX if args.quick else FULL_EXACT_MAX
    rows = sweep(sizes, exact_max)
    _banner("SOLVER CROSSOVER — fit/predict time and RMSE per backend")
    print_rows(rows)
    _check(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
