"""Bench: incremental GPR refits vs the full-refit AL hot loop.

Every AL iteration historically rebuilt the GP from scratch — a
multi-restart L-BFGS hyperparameter search plus an O(n^3) Cholesky — even
though exactly one training row was appended.  The fast path
(`ActiveLearner(fast_refits=True, refit_every=k)`) runs the expensive
search every k iterations and extends the posterior with O(n^2) rank-1
Cholesky updates in between.

This bench runs a Fig. 8-shaped workload (one long AL trajectory on a
synthetic runtime surface, pool in the hundreds of records) and reports:

* wall-clock of a 200-iteration run, full-refit baseline vs
  ``refit_every=10`` — the acceptance target is a >= 3x speedup;
* exactness of ``update()`` against a cold ``fit()`` at fixed
  hyperparameters (mean/SD/LML agree to <= 1e-8);
* a batched `run_batch(fast_refits=True)` trace matching the
  paper-faithful slow path on final-iteration RMSE to <= 1e-6.
"""

import time

import numpy as np
from conftest import banner

from repro.al import (
    ActiveLearner,
    VarianceReduction,
    default_model_factory,
    random_partition,
    run_batch,
)
from repro.gp import GaussianProcessRegressor


def _fig8_shaped_problem(n=320, seed=0):
    """Synthetic HPC-runtime-like surface: smooth trend + noise, cost = runtime."""
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 10, size=n))[:, np.newaxis]
    y = 0.5 * X[:, 0] + np.sin(X[:, 0]) + 0.05 * rng.standard_normal(n)
    costs = np.abs(y) + 1.0
    return X, y, costs


def _timed_run(n_iterations, **learner_kw):
    X, y, costs = _fig8_shaped_problem()
    part = random_partition(X.shape[0], rng=0, test_fraction=0.2)
    learner = ActiveLearner(
        X, y, costs, part, VarianceReduction(),
        model_factory=default_model_factory(noise_floor=1e-2),
        **learner_kw,
    )
    t0 = time.perf_counter()
    trace = learner.run(n_iterations)
    return time.perf_counter() - t0, trace


def test_incremental_al_speedup(once):
    n_iterations = 200

    def run_both():
        slow_s, slow_trace = _timed_run(n_iterations)
        fast_s, fast_trace = _timed_run(
            n_iterations, fast_refits=True, refit_every=10
        )
        return slow_s, fast_s, slow_trace, fast_trace

    slow_s, fast_s, slow_trace, fast_trace = once(run_both)
    speedup = slow_s / fast_s
    banner("INCREMENTAL GPR — 200-iteration AL run, refit_every=10 vs full refits")
    print(f"full-refit baseline : {slow_s:8.2f} s")
    print(f"fast path (k=10)    : {fast_s:8.2f} s")
    print(f"speedup             : {speedup:8.1f}x  (target: >= 3x)")
    print(f"final RMSE  slow/fast: {slow_trace.final.rmse:.5f} / "
          f"{fast_trace.final.rmse:.5f}")
    assert speedup >= 3.0
    # The schedule trades hyperparameter freshness, not correctness: both
    # paths must converge on this smooth surface.
    assert fast_trace.final.rmse < 0.5 * fast_trace.records[0].rmse


def test_update_exactness(once):
    """update() vs fresh fit() at fixed theta: mean/SD/LML to <= 1e-8."""
    X, y, _ = _fig8_shaped_problem(n=120, seed=1)
    model = GaussianProcessRegressor(n_restarts=1, rng=0)
    model.fit(X[:100], y[:100])

    def extend():
        for i in range(100, 120):
            model.update(X[i], y[i])
        return model

    once(extend)
    ref = GaussianProcessRegressor(
        kernel=model.kernel_.clone_with_theta(model.kernel_.theta),
        noise_variance=model.noise_variance_,
        noise_variance_bounds="fixed",
        optimizer=None,
    ).fit(X, y)
    Xq = np.linspace(0, 10, 200)[:, np.newaxis]
    mu_u, sd_u = model.predict(Xq, return_std=True)
    mu_c, sd_c = ref.predict(Xq, return_std=True)
    mean_err = float(np.abs(mu_u - mu_c).max())
    sd_err = float(np.abs(sd_u - sd_c).max())
    lml_err = abs(model.lml_ - ref.lml_)
    banner("INCREMENTAL GPR — update() vs cold fit() at fixed hyperparameters")
    print(f"max |mean diff| : {mean_err:.3e}")
    print(f"max |sd diff|   : {sd_err:.3e}")
    print(f"|lml diff|      : {lml_err:.3e}   (target: <= 1e-8 each)")
    assert mean_err <= 1e-8
    assert sd_err <= 1e-8
    assert lml_err <= 1e-8


def test_run_batch_fast_path_matches_slow(once):
    """run_batch(fast_refits=True) == slow path on final RMSE to <= 1e-6."""
    X, y, costs = _fig8_shaped_problem(n=120, seed=2)
    kwargs = dict(
        strategy_factory=lambda i: VarianceReduction(),
        n_partitions=4,
        n_iterations=25,
        seed=3,
        model_factory=default_model_factory(1e-2),
    )

    def run_both():
        slow = run_batch(X, y, costs, **kwargs)
        fast = run_batch(X, y, costs, fast_refits=True, **kwargs)
        return slow, fast

    slow, fast = once(run_both)
    gap = float(
        np.abs(
            slow.series_matrix("rmse")[:, -1] - fast.series_matrix("rmse")[:, -1]
        ).max()
    )
    banner("INCREMENTAL GPR — run_batch fast path vs paper-faithful slow path")
    print(f"max |final RMSE diff| over partitions: {gap:.3e} (target: <= 1e-6)")
    assert gap <= 1e-6
