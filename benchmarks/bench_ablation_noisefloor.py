"""Ablation: noise-floor policies — fixed 1e-8, fixed 1e-1, dynamic 1/sqrt(N).

The paper fixes sigma_n^2 >= 1e-1 but proposes (Section V-B4) "a limit that
dynamically adjusts ... sigma_n >= 1/sqrt(N), where N is the iteration
counter" as future work.  This bench runs all three policies on identical
partitions of the Fig. 6 subset.
"""

import numpy as np
from conftest import banner

from repro.al import (
    VarianceReduction,
    default_model_factory,
    dynamic_noise_floor,
    run_batch,
)
from repro.experiments.common import fig6_subset


def _policy_runs(X, y, costs, n_partitions=6, n_iterations=35):
    common = dict(
        strategy_factory=lambda i: VarianceReduction(),
        n_partitions=n_partitions,
        n_iterations=n_iterations,
        seed=21,
    )
    return {
        "fixed 1e-8": run_batch(
            X, y, costs, model_factory=default_model_factory(1e-8), **common
        ),
        "fixed 1e-1": run_batch(
            X, y, costs, model_factory=default_model_factory(1e-1), **common
        ),
        "dynamic 1/sqrt(N)": run_batch(
            X, y, costs,
            model_factory=default_model_factory(1e-8),
            noise_floor_schedule=dynamic_noise_floor(scale=1.0, minimum=1e-8),
            **common,
        ),
    }


def test_noise_floor_policies(once):
    X, y, costs = fig6_subset()
    results = once(_policy_runs, X, y, costs)
    banner("ABLATION — noise-floor policy (paper section V-B4)")
    print(f"{'policy':>20} {'min early sd_sel':>17} {'final RMSE':>11} "
          f"{'final AMSD':>11}")
    for name, batch in results.items():
        sd = batch.series_matrix("sd_at_selected")
        early = float(sd[:, : min(5, sd.shape[1])].min())
        print(f"{name:>20} {early:>17.2e} "
              f"{batch.mean_series('rmse')[-1]:>11.4f} "
              f"{batch.mean_series('amsd')[-1]:>11.4f}")
    # The dynamic floor must prevent the early collapse like the fixed 1e-1
    # floor does (its floor at iteration 0 is 1.0).
    dyn = results["dynamic 1/sqrt(N)"].series_matrix("sd_at_selected")
    low = results["fixed 1e-8"].series_matrix("sd_at_selected")
    assert dyn[:, :5].min() > low[:, :5].min()
