"""Ablation: greedy one-at-a-time vs parallel batch selection.

Section VI: "some experiments could reasonably be run in parallel which
adds additional scheduling concerns and may indicate a less greedy
selection strategy."  This bench compares sequential AL against
kriging-believer batches of 2/4/8 at an equal total experiment budget.
"""

import numpy as np
from conftest import banner

from repro.al import (
    CandidatePool,
    VarianceReduction,
    default_model_factory,
    random_partition,
    select_batch,
)
from repro.al.metrics import rmse
from repro.experiments.common import fig6_subset
from repro.gp import GaussianProcessRegressor


def _run_batched(X, y, costs, batch_size, budget=24, seed=0):
    """AL with batched selection: refit only between batches."""
    part = random_partition(X.shape[0], seed)
    pool = CandidatePool(X[part.active], y[part.active], costs[part.active])
    X_train = X[part.initial].copy()
    y_train = y[part.initial].copy()
    factory = default_model_factory(1e-1)
    model = factory()
    model.fit(X_train, y_train)
    spent = 0
    while spent < budget:
        k = min(batch_size, budget - spent, pool.n_available)
        picks = select_batch(model, pool, VarianceReduction(), k)
        for idx in picks:
            X_train = np.vstack([X_train, pool.X[idx]])
            y_train = np.append(y_train, pool.y[idx])
        spent += k
        model = factory()
        model.fit(X_train, y_train)
    return rmse(model, X[part.test], y[part.test])


def _sweep(X, y, costs, sizes=(1, 2, 4, 8), n_seeds=4):
    out = {}
    for size in sizes:
        vals = [
            _run_batched(X, y, costs, size, seed=s) for s in range(n_seeds)
        ]
        out[size] = (float(np.mean(vals)), float(np.std(vals)))
    return out


def test_batch_selection(once):
    X, y, costs = fig6_subset()
    results = once(_sweep, X, y, costs)
    banner("ABLATION — batch selection at a 24-experiment budget "
           "(paper section VI)")
    print(f"{'batch size':>11} {'RMSE mean':>10} {'RMSE std':>9} "
          f"{'refits':>7}")
    for size, (mean, std) in results.items():
        print(f"{size:>11} {mean:>10.4f} {std:>9.4f} {24 // size:>7}")
    seq = results[1][0]
    batched8 = results[8][0]
    # Batching trades a little accuracy for 8x fewer refits/scheduling
    # rounds; it must stay in the same quality regime as sequential AL.
    assert batched8 < 4 * seq + 0.1
