"""Bench: Fig. 4 — LML contour over (length scale l, noise sigma_n).

Paper: with abundant data the landscape has "a unique global optimum"
findable by "gradient ascend with a single randomly selected starting
point".
"""

from conftest import banner

from repro.experiments import fig4
from repro.viz import heatmap


def test_fig4(once):
    result = once(fig4.run)
    banner("FIG 4 — LML landscape, abundant data (paper: unique peak)")
    ls, nv, peak = result.grid.peak()
    print(f"grid peak: l={ls:.3g}, sigma_n^2={nv:.3g}, LML={peak:.1f}")
    print(f"interior local maxima on grid: {result.n_local_maxima}")
    print(f"single-start optimum: l={result.single_start_optimum[0]:.3g}, "
          f"sigma_n^2={result.single_start_optimum[1]:.3g}")
    print(f"multi-start optimum:  l={result.multi_start_optimum[0]:.3g}, "
          f"sigma_n^2={result.multi_start_optimum[1]:.3g}")
    print(f"optima agree: {result.optima_agree}   "
          f"peakedness (max - median LML): {result.lml_range:.1f}")
    print()
    print(heatmap(result.grid.lml,
                  x_label="log sigma_n^2 ->", y_label="log l (top=small)"))
    assert result.n_local_maxima == 1
    assert result.optima_agree
