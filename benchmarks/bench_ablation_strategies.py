"""Ablation: full strategy family — VR, CE, EMCM, Random.

Extends Fig. 8's two-way comparison with the paper's Section III baseline
(EMCM, whose Monte-Carlo variance estimate the paper criticizes) and plain
random sampling (the static-design strawman), on identical partitions.
"""

import numpy as np
from conftest import banner

from repro.al import (
    EMCM,
    CostEfficiency,
    RandomSampling,
    VarianceReduction,
    default_model_factory,
    run_batch,
)
from repro.experiments.common import fig6_subset


def _run_all(X, y, costs, n_partitions=6, n_iterations=40):
    common = dict(
        n_partitions=n_partitions,
        n_iterations=n_iterations,
        seed=31,
        model_factory=default_model_factory(1e-1),
    )
    return {
        "variance-reduction": run_batch(
            X, y, costs, strategy_factory=lambda i: VarianceReduction(), **common
        ),
        "cost-efficiency": run_batch(
            X, y, costs, strategy_factory=lambda i: CostEfficiency(), **common
        ),
        "emcm": run_batch(
            X, y, costs,
            strategy_factory=lambda i: EMCM(n_members=4, seed=i),
            **common,
        ),
        "random": run_batch(
            X, y, costs,
            strategy_factory=lambda i: RandomSampling(seed=i),
            **common,
        ),
    }


def test_strategy_family(once):
    X, y, costs = fig6_subset()
    results = once(_run_all, X, y, costs)
    banner("ABLATION — strategy family after 40 iterations, 6 partitions")
    print(f"{'strategy':>20} {'final RMSE':>11} {'final AMSD':>11} "
          f"{'total cost':>12}")
    for name, batch in results.items():
        print(f"{name:>20} {batch.mean_series('rmse')[-1]:>11.4f} "
              f"{batch.mean_series('amsd')[-1]:>11.4f} "
              f"{batch.mean_series('cumulative_cost')[-1]:>12,.0f}")
    vr = results["variance-reduction"].mean_series("rmse")[-1]
    rnd = results["random"].mean_series("rmse")[-1]
    emcm = results["emcm"].mean_series("rmse")[-1]
    # GPR-variance-driven AL must beat random sampling at equal iterations,
    # and EMCM's data-bound disagreement signal must not beat it either.
    assert vr <= rnd * 1.2
    assert vr <= emcm * 1.5
