"""Micro-benchmarks: mini HPGMG-FE solver throughput.

Reports the benchmark's own figure of merit (DOF/s of an FMG+V-cycle solve)
per operator flavour and size, mirroring how real HPGMG ranks machines.
"""

import pytest

from repro.hpgmg import MultigridSolver, load_vector, make_problem, source_term


@pytest.mark.parametrize("operator", ["poisson1", "poisson2", "poisson2affine"])
def test_solve_throughput(benchmark, operator):
    problem = make_problem(operator)
    solver = MultigridSolver(problem, 32, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    result = benchmark(solver.solve, f, rtol=1e-8)
    assert result.converged
    print(f"\n{operator}: {solver.dofs} DOF, "
          f"{solver.dofs / result.seconds:,.0f} DOF/s, "
          f"{result.cycles} cycles, {result.work_units:.0f} work units")


@pytest.mark.parametrize("ne", [16, 32, 64])
def test_vcycle_cost_scaling(benchmark, ne):
    problem = make_problem("poisson1")
    solver = MultigridSolver(problem, ne, rng=0)
    f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
    u = benchmark(solver.vcycle, f)
    assert u.shape == (solver.dofs,)


def test_assembly_cost(benchmark):
    from repro.hpgmg import assemble

    problem = make_problem("poisson2affine")
    mesh = problem.mesh(64)
    op = benchmark(assemble, problem, mesh)
    assert op.n == mesh.n_interior


@pytest.mark.parametrize("operator", ["poisson1", "poisson2"])
def test_solve_throughput_3d(benchmark, operator):
    """The 3-D (native HPGMG dimension) variant's figure of merit."""
    from repro.hpgmg import MultigridSolver3, load_vector3, make_problem3, source_term3

    problem = make_problem3(operator)
    solver = MultigridSolver3(problem, 8, rng=0)
    f = load_vector3(problem, solver.levels[0].mesh, source_term3(problem))
    result = benchmark(solver.solve, f, rtol=1e-8)
    assert result.converged
    print(f"\n3-D {operator}: {solver.dofs} DOF, "
          f"{solver.dofs / result.seconds:,.0f} DOF/s, {result.cycles} cycles")
