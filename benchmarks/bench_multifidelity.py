"""Cost-error curves: single-fidelity AL vs 2-tier multi-fidelity fusion.

Runs the same mixed-operator acquisition problem (poisson1 + poisson2,
noise-free reference responses) two ways:

- **single**: every query is a full-fidelity run (cost multiplier 1.0,
  noise sd 0.02 in log10-runtime units);
- **multi**: the acquisition may also buy a cheap noisy probe (10% of the
  full cost, noise sd 0.08) and repeated observations fuse by inverse
  variance into heteroscedastic GP rows
  (:mod:`repro.al.fidelity`).

Reference costs are one unit per full experiment: the pool's raw
core-second costs span four decades, so using them as base costs turns the
exhibit into a study of cost skew (both campaigns' budgets drown in the
initial design) rather than of fidelity choice.  Unit costs isolate the
question the tentpole asks — what does buying cheap-noisy instead of
expensive-accurate do to the cost-error curve?

Reported per campaign: the (cumulative cost, test RMSE) curve and the
cumulative cost at which it first reaches the single-fidelity campaign's
final RMSE x 1.05.  The acceptance bar is the tentpole claim: the 2-tier
campaign reaches that target at measurably lower cumulative cost
(<= 0.9x single's cost-to-target).

Usable standalone (``python benchmarks/bench_multifidelity.py [--quick]``;
exit 0 iff the acceptance bar holds) or under
``pytest benchmarks/ --benchmark-only``.
"""

import argparse
import sys

import numpy as np

from repro.al.fidelity import (
    FidelityTier,
    MultiFidelityLearner,
    MultiFidelityOracle,
)
from repro.al.partition import random_partition
from repro.al.sharding import mixed_operator_pool

FULL = FidelityTier("full", cost_multiplier=1.0, noise_variance=0.02**2)
PROBE = FidelityTier("probe", cost_multiplier=0.1, noise_variance=0.08**2)

#: multi must reach the RMSE target at <= this fraction of single's cost
COST_ADVANTAGE_BAR = 0.9


class _TableReference:
    """Exact-row lookup into the pool's noise-free responses."""

    def __init__(self, X, values):
        self._table = {
            tuple(float(v) for v in row): float(val)
            for row, val in zip(X, values)
        }

    def __call__(self, x):
        return self._table[tuple(float(v) for v in np.asarray(x).ravel())]


def _problem(n_points, seed=5):
    X, y, _costs = mixed_operator_pool(n_points, seed=seed, noise=None)
    part = random_partition(
        n_points, rng=9, n_initial=1, test_fraction=0.25
    )
    active = np.concatenate([part.initial, part.active])
    return X, y, active, part.test


def _run_campaign(tiers, *, n_points, n_rounds, seed=3):
    X, y, active, test_idx = _problem(n_points)
    oracle = MultiFidelityOracle(
        _TableReference(X, y),
        tiers,
        rng=np.random.default_rng(seed + 100),
    )
    learner = MultiFidelityLearner(
        oracle,
        X[active],
        n_rounds=n_rounds,
        n_initial=4,
        test=(X[test_idx], y[test_idx]),
        seed=seed,
    )
    return learner.run()


def _cost_error_curve(result):
    """(cost, rmse) points: rmse of the model trained on everything paid
    for so far.  Record r's ``rmse`` is computed *before* its query, so it
    pairs with the previous round's cumulative cost; the final refit pairs
    with the total."""
    rounds = result.rounds
    initial_cost = rounds[0].cumulative_cost - rounds[0].cost
    curve = [(initial_cost, rounds[0].rmse)]
    for prev, nxt in zip(rounds, rounds[1:]):
        curve.append((prev.cumulative_cost, nxt.rmse))
    curve.append((result.cumulative_cost, result.final_rmse))
    return curve


def _cost_to_reach(curve, target):
    """Cumulative cost at the first point with RMSE <= target (inf if never)."""
    for cost, rmse in curve:
        if rmse <= target:
            return cost
    return float("inf")


def multifidelity_sweep(*, n_points, single_rounds, multi_rounds):
    single = _run_campaign((FULL,), n_points=n_points, n_rounds=single_rounds)
    multi = _run_campaign(
        (PROBE, FULL), n_points=n_points, n_rounds=multi_rounds
    )
    target = single.final_rmse * 1.05
    single_curve = _cost_error_curve(single)
    multi_curve = _cost_error_curve(multi)
    return {
        "target": target,
        "single": {
            "result": single,
            "curve": single_curve,
            "cost_to_target": _cost_to_reach(single_curve, target),
        },
        "multi": {
            "result": multi,
            "curve": multi_curve,
            "cost_to_target": _cost_to_reach(multi_curve, target),
        },
    }


def _print_report(rows, banner_fn=None):
    if banner_fn:
        banner_fn("multi-fidelity: cost to reach the single-fidelity RMSE target")
    else:
        print()
        print("multi-fidelity: cost to reach the single-fidelity RMSE target")
    print(f"  RMSE target (single final x 1.05): {rows['target']:.4f}")
    for label in ("single", "multi"):
        entry = rows[label]
        res = entry["result"]
        tier_mix = ", ".join(
            f"{k}={v}" for k, v in sorted(res.tier_counts.items())
        )
        print(
            f"  {label:7s} final rmse {res.final_rmse:.4f}  "
            f"total cost {res.cumulative_cost:9.1f}  "
            f"cost-to-target {entry['cost_to_target']:9.1f}  "
            f"({tier_mix})"
        )
    s = rows["single"]["cost_to_target"]
    m = rows["multi"]["cost_to_target"]
    if np.isfinite(s) and np.isfinite(m) and s > 0:
        print(f"  cost ratio (multi/single): {m / s:.3f}")


def _check(rows):
    problems = []
    s = rows["single"]["cost_to_target"]
    m = rows["multi"]["cost_to_target"]
    if not np.isfinite(s):
        problems.append("single-fidelity campaign never reached its own target")
    if not np.isfinite(m):
        problems.append(
            f"multi-fidelity campaign never reached the RMSE target "
            f"{rows['target']:.4f} (final {rows['multi']['result'].final_rmse:.4f})"
        )
    if np.isfinite(s) and np.isfinite(m) and m > COST_ADVANTAGE_BAR * s:
        problems.append(
            f"multi-fidelity cost-to-target {m:.1f} is not measurably below "
            f"single-fidelity {s:.1f} (bar: {COST_ADVANTAGE_BAR}x)"
        )
    multi_counts = rows["multi"]["result"].tier_counts
    if not all(multi_counts.get(t.name, 0) > 0 for t in (PROBE, FULL)):
        problems.append(
            f"multi-fidelity campaign never mixed tiers: {multi_counts}"
        )
    return problems


# ------------------------------------------------------------- pytest benches


def test_multifidelity_cost_advantage(once):
    rows = once(
        multifidelity_sweep, n_points=120, single_rounds=16, multi_rounds=100
    )
    from conftest import banner

    _print_report(rows, banner_fn=banner)
    assert _check(rows) == []


# ---------------------------------------------------------------- script mode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (120-point pool, 16/100 rounds)")
    parser.add_argument("--pool-size", type=int, default=None)
    parser.add_argument("--single-rounds", type=int, default=None)
    parser.add_argument("--multi-rounds", type=int, default=None)
    args = parser.parse_args(argv)

    n_points = args.pool_size or (120 if args.quick else 160)
    single_rounds = args.single_rounds or (16 if args.quick else 20)
    multi_rounds = args.multi_rounds or (100 if args.quick else 140)
    rows = multifidelity_sweep(
        n_points=n_points,
        single_rounds=single_rounds,
        multi_rounds=multi_rounds,
    )
    _print_report(rows)
    problems = _check(rows)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("multi-fidelity bench: all acceptance bars hold")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
