"""Micro-benchmarks: discrete-event scheduler throughput.

Measures how fast the SLURM-like simulator drains a batch — relevant
because the dataset campaigns push thousands of jobs through it.
"""

import numpy as np
import pytest

from repro.cluster import (
    ExecutionOutcome,
    IPMISampler,
    JobSpec,
    PowerModel,
    SlurmSimulator,
    wisconsin_cluster,
)


class _QuickExec:
    def estimate(self, spec):
        return spec.problem_size

    def execute(self, spec, rng):
        return ExecutionOutcome(runtime_seconds=spec.problem_size)


def _specs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        JobSpec("poisson1", float(rng.uniform(1, 50)),
                int(rng.choice([1, 8, 32, 64, 128])), 2.4, repeat_index=i)
        for i in range(n)
    ]


@pytest.mark.parametrize("n_jobs", [100, 500])
def test_scheduler_throughput(benchmark, n_jobs):
    specs = _specs(n_jobs)

    def run():
        sim = SlurmSimulator(wisconsin_cluster(), _QuickExec(), rng=0)
        return sim.run_batch(specs)

    records = benchmark(run)
    assert len(records) == n_jobs


def test_scheduler_with_power_tracing(benchmark):
    specs = _specs(100)

    def run():
        sim = SlurmSimulator(
            wisconsin_cluster(), _QuickExec(),
            power_model=PowerModel(), sampler=IPMISampler(), rng=0,
        )
        return sim.run_batch(specs)

    records = benchmark(run)
    assert sum(1 for r in records if r.energy_joules is not None) > 80
