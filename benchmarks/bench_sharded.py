"""Robustness: global GP vs sharded campaigns, fault-free and under chaos.

Runs the same mixed-operator acquisition campaign (poisson1 + poisson2,
the heterogeneous regime sharding is built for) four ways per shard
count — ``n_shards in (1, 2, 4, 8)``, where 1 shard *is* the global GP —
fault-free and with a 20% per-(shard, round) kill rate injected via
:class:`~repro.cluster.faults.ShardFaultConfig`.

Reported per (shards, mode): wall-clock seconds of the whole campaign,
test RMSE of the final (possibly degraded) model, and mean shard
availability.  Two claims are asserted: chaos never prevents completion
(degraded mode, not death), and chaos RMSE stays within 1.5x of the same
shard count's fault-free RMSE.

Usable standalone (``python benchmarks/bench_sharded.py [--quick]``;
exit 0 iff every acceptance bar holds) or under
``pytest benchmarks/ --benchmark-only``.
"""

import argparse
import sys
import time

import numpy as np

from repro.al.metrics import rmse as rmse_metric
from repro.al.partition import random_partition
from repro.al.sharding import ShardedLearner, ShardingConfig, mixed_operator_pool
from repro.al.strategies import CostEfficiency
from repro.cluster.faults import ShardFaultConfig

SHARD_COUNTS = (1, 2, 4, 8)
KILL_RATE = 0.2


def _problem(n_points):
    X, y, costs = mixed_operator_pool(n_points, seed=5)
    part = random_partition(
        n_points, rng=9, n_initial=max(24, n_points // 8), test_fraction=0.25
    )
    return X, y, costs, part


def _run_one(n_shards, chaos, *, n_points, n_rounds):
    X, y, costs, part = _problem(n_points)
    fault_config = (
        ShardFaultConfig(crash_rate=KILL_RATE / 2, hang_rate=KILL_RATE / 2)
        if chaos
        else None
    )
    learner = ShardedLearner(
        X, y, costs, part,
        config=ShardingConfig(
            n_shards=n_shards, n_rounds=n_rounds, batch_size=2, seed=13
        ),
        strategy=CostEfficiency(),
        backend="process",
        n_workers=min(n_shards, 4),
        fault_config=fault_config,
    )
    start = time.perf_counter()
    result = learner.run()
    elapsed = time.perf_counter() - start
    return {
        "shards": n_shards,
        "mode": "chaos" if chaos else "clean",
        "seconds": elapsed,
        "stop_reason": result.stop_reason,
        "rmse": (
            rmse_metric(result.model, X[part.test], y[part.test])
            if result.model is not None
            else float("nan")
        ),
        "availability": result.shard_availability["mean_availability"],
    }


def sharded_sweep(*, n_points=160, n_rounds=8):
    return [
        _run_one(s, chaos, n_points=n_points, n_rounds=n_rounds)
        for s in SHARD_COUNTS
        for chaos in (False, True)
    ]


def _print_report(rows, banner_fn=None):
    if banner_fn is None:
        print()
        print("=" * 72)
        print("SHARDING — global GP vs sharded, fault-free and chaos")
        print("=" * 72)
    else:
        banner_fn("SHARDING — global GP vs sharded, fault-free and chaos")
    print(f"{'shards':>6} {'mode':>6} {'wall s':>8} {'test RMSE':>10} "
          f"{'avail':>6} {'stop':>12}")
    for r in rows:
        print(f"{r['shards']:>6} {r['mode']:>6} {r['seconds']:>8.1f} "
              f"{r['rmse']:>10.4f} {r['availability']:>6.2f} "
              f"{r['stop_reason']:>12}")
    by = {(r["shards"], r["mode"]): r for r in rows}
    clean = [by[(s, "clean")]["rmse"] for s in SHARD_COUNTS]
    best = SHARD_COUNTS[int(np.argmin(clean))]
    print(f"fault-free RMSE crossover: best at {best} shard(s) "
          f"({dict(zip(SHARD_COUNTS, [round(c, 4) for c in clean]))})")


def _check(rows):
    problems = []
    by = {(r["shards"], r["mode"]): r for r in rows}
    for s in SHARD_COUNTS:
        clean, chaos = by[(s, "clean")], by[(s, "chaos")]
        for r in (clean, chaos):
            if r["stop_reason"] != "completed":
                problems.append(
                    f"{s} shards {r['mode']}: stop_reason={r['stop_reason']}"
                )
        if not np.isfinite(chaos["rmse"]):
            problems.append(f"{s} shards chaos: no final model")
        elif chaos["rmse"] > 1.5 * clean["rmse"]:
            problems.append(
                f"{s} shards: chaos RMSE {chaos['rmse']:.4f} exceeds "
                f"1.5x fault-free {clean['rmse']:.4f}"
            )
        if not 0.0 < chaos["availability"] <= 1.0:
            problems.append(f"{s} shards chaos: bad availability")
    return problems


# ------------------------------------------------------------- pytest benches


def test_sharded_vs_global(once):
    rows = once(sharded_sweep, n_points=120, n_rounds=6)
    from conftest import banner

    _print_report(rows, banner_fn=banner)
    assert _check(rows) == []


# ---------------------------------------------------------------- script mode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized sweep (120-point pool, 6 rounds)")
    parser.add_argument("--pool-size", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args(argv)

    n_points = args.pool_size or (120 if args.quick else 160)
    n_rounds = args.rounds or (6 if args.quick else 8)
    rows = sharded_sweep(n_points=n_points, n_rounds=n_rounds)
    _print_report(rows)
    problems = _check(rows)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("sharded bench: all acceptance bars hold")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
