"""Ablation: adaptive AL vs the classical static designs of Section II-B.

Jain's designs (one-factor-at-a-time, 2^k factorial, fractional factorial)
and Latin hypercube sampling pick all experiments a priori; AL adapts.  The
paper argues static designs "do not change as measurements become
available" and represent the input space poorly — this bench quantifies
that on the Fig. 6 subset at matched experiment counts.
"""

import numpy as np
from conftest import banner

from repro.al import VarianceReduction, default_model_factory, random_partition
from repro.al.design import (
    latin_hypercube,
    nearest_pool_indices,
    one_factor_at_a_time,
    static_design_rmse,
    two_level_factorial,
)
from repro.al.learner import ActiveLearner
from repro.experiments.common import fig6_subset


def _compare(X, y, costs, n_seeds=5):
    rows = []
    for seed in range(n_seeds):
        part = random_partition(X.shape[0], seed)
        Xp, yp = X[part.active], y[part.active]
        Xt, yt = X[part.test], y[part.test]

        # Static designs (trained once).
        designs = {
            "2^k factorial": two_level_factorial(Xp),
            "one-factor-at-a-time": one_factor_at_a_time(Xp, levels_per_factor=5),
        }
        budgets = {}
        static_rmse = {}
        for name, design in designs.items():
            r, n_used = static_design_rmse(design, Xp, yp, Xt, yt)
            static_rmse[name] = r
            budgets[name] = n_used
        # LHS and AL at the largest static budget for a fair match.
        budget = max(budgets.values())
        lhs = latin_hypercube(Xp, budget, rng=seed)
        static_rmse["latin hypercube"], _ = static_design_rmse(lhs, Xp, yp, Xt, yt)
        budgets["latin hypercube"] = budget

        learner = ActiveLearner(
            X, y, costs, part, VarianceReduction(),
            model_factory=default_model_factory(1e-1),
        )
        trace = learner.run(budget)
        # The trace's metrics are measured pre-selection; fit once more for
        # the post-budget model quality.
        from repro.al.metrics import rmse as rmse_metric

        model = learner._fit_model(budget)
        static_rmse["active learning (VR)"] = rmse_metric(model, Xt, yt)
        budgets["active learning (VR)"] = budget
        rows.append((seed, static_rmse, budgets))
    return rows


def test_al_vs_static_designs(once):
    X, y, costs = fig6_subset()
    rows = once(_compare, X, y, costs)
    banner("ABLATION — AL vs static designs (paper section II-B)")
    names = list(rows[0][1].keys())
    agg = {name: [] for name in names}
    for _, rmses, budgets in rows:
        for name in names:
            agg[name].append(rmses[name])
    print(f"{'design':>22} {'experiments':>12} {'RMSE mean':>10} {'RMSE std':>9}")
    for name in names:
        budget = rows[0][2][name]
        vals = np.asarray(agg[name])
        print(f"{name:>22} {budget:>12} {vals.mean():>10.4f} {vals.std():>9.4f}")
    # Adaptive AL must beat the 2^k corner design (which cannot see the
    # response surface's interior curvature at all).
    assert np.mean(agg["active learning (VR)"]) < np.mean(agg["2^k factorial"])
