"""Bench: prediction-service throughput and rollover under load.

The serving layer's two promises are (1) batched queries cost two
triangular solves per chunk — so a 10^4-point block should answer in
milliseconds, not re-fit anything — and (2) hot rollover is cheap and
non-disruptive: queries racing ``refresh()`` keep answering, on the old
version until the swap, on the new one after.

Reported here:

* batched-predict throughput (points/s) across block sizes, mean and SD
  service calls, against a full-block in-memory ``predict`` as reference
  (chunking usually *wins* — smaller cross-covariance blocks stay in
  cache);
* registry publish/load latency at growing training-set sizes;
* rollover under load: total queries answered and versions observed by a
  query loop while a publisher thread pushes versions into the registry,
  plus the rollover count (acceptance: every query answers, zero errors,
  and the loop observes more than one version).
"""

import threading
import time

import numpy as np
from conftest import banner

from repro.gp import GaussianProcessRegressor
from repro.serve import ModelRegistry, PredictionService


def _fitted(n_train, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_train, 3))
    y = np.sin(X @ np.array([1.0, 2.0, 0.5])) + 0.02 * rng.standard_normal(n_train)
    return GaussianProcessRegressor(rng=0, n_restarts=1, normalize_y=True).fit(X, y)


def test_batched_predict_throughput(once, tmp_path):
    model = _fitted(200)
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model)
    Q = np.random.default_rng(1).uniform(size=(20_000, 3))

    def run():
        rows = []
        for block in (1_000, 5_000, 20_000):
            service = PredictionService(registry)
            q = Q[:block]
            t0 = time.perf_counter()
            service.predict(q)
            t_mean = time.perf_counter() - t0
            t0 = time.perf_counter()
            service.predict_std(q)
            t_std = time.perf_counter() - t0
            rows.append((block, block / t_mean, block / t_std))
        t0 = time.perf_counter()
        mu_mem = model.predict(Q)
        t_mem = time.perf_counter() - t0
        assert np.array_equal(PredictionService(registry).predict(Q), mu_mem)
        return rows, len(Q) / t_mem

    rows, reference = once(run)
    banner("serving: batched predict throughput (n_train=200)")
    print(f"{'block':>8s} {'mean pts/s':>14s} {'mean+sd pts/s':>14s}")
    for block, tp_mean, tp_std in rows:
        print(f"{block:8d} {tp_mean:14.0f} {tp_std:14.0f}")
    print(f"in-memory full-block reference: {reference:.0f} pts/s "
          "(served output bit-identical)")


def test_publish_load_latency(once, tmp_path):
    sizes = (50, 200, 800)
    models = {n: _fitted(n, seed=n) for n in sizes}

    def run():
        rows = []
        for n_train in sizes:
            model = models[n_train]
            registry = ModelRegistry(tmp_path / f"reg{n_train}")
            t0 = time.perf_counter()
            registry.publish(model)
            t_pub = time.perf_counter() - t0
            t0 = time.perf_counter()
            registry.load()
            t_load = time.perf_counter() - t0
            rows.append((n_train, t_pub * 1e3, t_load * 1e3))
        return rows

    rows = once(run)
    banner("serving: registry publish/load latency")
    print(f"{'n_train':>8s} {'publish ms':>12s} {'load ms':>12s}")
    for n_train, pub_ms, load_ms in rows:
        print(f"{n_train:8d} {pub_ms:12.2f} {load_ms:12.2f}")


def test_rollover_under_load(once, tmp_path):
    """Queries race a publisher; every query must answer, across versions."""
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(_fitted(100, seed=0))
    models = [_fitted(100 + 20 * i, seed=i) for i in range(1, 5)]
    Q = np.random.default_rng(2).uniform(size=(2_000, 3))

    def run():
        service = PredictionService(registry, auto_refresh=True)
        versions_seen = set()
        n_queries = 0
        stop = threading.Event()

        def publisher():
            for model in models:
                time.sleep(0.02)
                registry.publish(model)
            stop.set()

        thread = threading.Thread(target=publisher)
        thread.start()
        while not stop.is_set() or service.version != registry.latest_version():
            service.predict(Q)
            versions_seen.add(service.version)
            n_queries += 1
        thread.join()
        # Final answers match the final published model exactly.
        final_model, _ = registry.load()
        assert np.array_equal(service.predict(Q), final_model.predict(Q))
        return n_queries, sorted(versions_seen), service.n_rollovers

    n_queries, versions_seen, n_rollovers = once(run)
    banner("serving: hot rollover under load (4 publishes racing queries)")
    print(f"queries answered:  {n_queries} x {len(Q)} points, 0 errors")
    print(f"versions observed: {versions_seen}")
    print(f"rollovers:         {n_rollovers}")
    assert len(versions_seen) > 1
    assert n_rollovers >= 1
