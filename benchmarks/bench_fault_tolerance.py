"""Robustness: online campaign cost/error under injected faults (ISSUE 2).

Sweeps the injected fault rate (crashes, hangs past the SLURM time limit,
corrupted measurements) over online campaigns run two ways:

* **resilient** — the default :class:`~repro.al.resilience.RetryPolicy`
  (3 attempts, exponential backoff) plus the default
  :class:`~repro.al.resilience.QuarantinePolicy` (FAILED/TIMEOUT states and
  verification failures never reach the GP);
* **naive** — ``RetryPolicy.none()`` + ``QuarantinePolicy.permissive()``,
  i.e. the pre-fault-tolerance behaviour of blindly ingesting every record,
  including timeout-truncated and corrupted runtimes.

Reported per (rate, mode): usable observations, simulated wall-clock
(including retry backoff), total and wasted core-seconds, retries, and the
final model's RMSE on a held-out probe grid — the cost/error tradeoff of
paying for retries versus training on garbage.
"""

import numpy as np
from conftest import banner

from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.al.resilience import QuarantinePolicy, RetryPolicy
from repro.cluster.faults import FaultConfig, FaultyExecutor
from repro.datasets.generate import ModelExecutor
from repro.perfmodel import RuntimeModel

RATES = (0.0, 0.1, 0.2, 0.4)


def _candidates():
    sizes = [32**3, 64**3, 96**3, 128**3, 192**3, 256**3]
    nps = [1, 4, 16, 32, 64, 128]
    freqs = [1.2, 1.8, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


def _fault_config(rate: float) -> FaultConfig:
    # Half crashes, a quarter hangs, a quarter corrupted measurements.
    return FaultConfig(
        crash_rate=0.50 * rate,
        hang_rate=0.25 * rate,
        corrupt_rate=0.25 * rate,
    )


def _probe_rmse(model) -> float:
    rm = RuntimeModel()
    rng = np.random.default_rng(99)
    rows = _candidates()[rng.choice(len(_candidates()), 40, replace=False)]
    X = np.column_stack(
        [np.log10(rows[:, 0]), np.log2(rows[:, 1]), rows[:, 2]]
    )
    truth = np.log10(
        [float(rm.runtime("poisson1", s, int(p), f)) for s, p, f in rows]
    )
    pred = model.predict(X)
    return float(np.sqrt(np.mean((pred - truth) ** 2)))


def _run_campaign(rate: float, resilient: bool):
    config = CampaignConfig(
        operator="poisson1",
        candidates=_candidates(),
        batch_size=2,
        n_rounds=8,
    )
    campaign = OnlineCampaign(
        config,
        FaultyExecutor(ModelExecutor(), _fault_config(rate)),
        rng=5,
        retry_policy=RetryPolicy() if resilient else RetryPolicy.none(),
        quarantine_policy=(
            QuarantinePolicy() if resilient else QuarantinePolicy.permissive()
        ),
    )
    result = campaign.run()
    return (
        rate,
        "resilient" if resilient else "naive",
        result.y.shape[0],
        result.simulated_seconds,
        result.cpu_core_seconds,
        result.wasted_core_seconds,
        result.n_retries,
        _probe_rmse(result.model),
    )


def _sweep():
    return [
        _run_campaign(rate, resilient)
        for rate in RATES
        for resilient in (True, False)
    ]


def test_fault_tolerance_tradeoff(once):
    rows = once(_sweep)
    banner("ROBUSTNESS — campaign cost/error vs injected fault rate")
    print(f"{'rate':>5} {'mode':>10} {'obs':>4} {'sim wall s':>11} "
          f"{'core-s':>9} {'wasted':>8} {'retries':>8} {'probe RMSE':>11}")
    for rate, mode, obs, wall, core_s, wasted, retries, rmse in rows:
        print(f"{rate:>5.2f} {mode:>10} {obs:>4} {wall:>11,.0f} "
              f"{core_s:>9,.0f} {wasted:>8,.0f} {retries:>8} {rmse:>11.4f}")

    by = {(rate, mode): row for row in rows for rate, mode in [row[:2]]}

    def rmse_of(rate, mode):
        return by[(rate, mode)][7]

    # Fault-free: the two modes are identical campaigns.
    assert rmse_of(0.0, "resilient") == rmse_of(0.0, "naive")
    # Under heavy faults, gating garbage out of the GP beats ingesting it,
    # even though the resilient campaign pays for retries.
    assert rmse_of(0.4, "resilient") < rmse_of(0.4, "naive")
    # The resilient model stays in the useful regime at every rate...
    for rate in RATES:
        assert rmse_of(rate, "resilient") < 3 * rmse_of(0.0, "resilient") + 0.3
    # ...and its retries actually happened and were charged for.
    heavy = by[(0.4, "resilient")]
    assert heavy[6] > 0  # retries
    assert heavy[5] > 0  # wasted core-seconds
