"""Ablation: hyperparameter-search restart count.

The paper relies on scikit-learn's multi-restart gradient ascent "in order
to increase reliability".  Fig. 4 shows one start suffices with abundant
data; Fig. 5's shallow small-data landscape is where restarts can matter.
This bench quantifies both the reliability gain and the fit-time cost.
"""

import time

import numpy as np
from conftest import banner

from repro.experiments.common import fig6_subset
from repro.gp import GaussianProcessRegressor


def _sweep(X, y, restart_counts=(0, 2, 8), n_train=6, n_reps=8):
    rng = np.random.default_rng(0)
    subsets = [rng.choice(X.shape[0], size=n_train, replace=False)
               for _ in range(n_reps)]
    out = {}
    for restarts in restart_counts:
        lmls = []
        seconds = []
        for rep, idx in enumerate(subsets):
            model = GaussianProcessRegressor(
                noise_variance=1e-1, noise_variance_bounds=(1e-1, 1e2),
                n_restarts=restarts, rng=rep,
            )
            t0 = time.perf_counter()
            model.fit(X[idx], y[idx])
            seconds.append(time.perf_counter() - t0)
            lmls.append(model.lml_)
        out[restarts] = (
            float(np.mean(lmls)),
            float(np.std(lmls)),
            float(np.mean(seconds)),
        )
    return out


def test_restart_reliability(once):
    X, y, _ = fig6_subset()
    results = once(_sweep, X, y)
    banner("ABLATION — LML-ascent restart count (small shallow landscapes)")
    print(f"{'restarts':>9} {'mean LML':>10} {'LML std':>9} {'fit s':>8}")
    for restarts, (mean, std, secs) in results.items():
        print(f"{restarts:>9} {mean:>10.3f} {std:>9.3f} {secs:>8.4f}")
    # More restarts can only improve (or tie) the achieved LML on average,
    # at a roughly proportional fit-time cost.
    assert results[8][0] >= results[0][0] - 1e-6
    assert results[8][2] > results[0][2]
