"""Bench: Fig. 5 — 2-D GPR on 4 random points + shallow LML landscape.

Paper: the 4-point model's CI surfaces are tight near the data and widest
"where both Frequency and Problem Size are near their maximum values"; its
LML landscape is "significantly more shallow" than Fig. 4's yet still
yields a usable optimum.
"""

import numpy as np
from conftest import banner

from repro.experiments import fig4, fig5
from repro.viz import heatmap


def test_fig5(once):
    result = once(fig5.run)
    banner("FIG 5 — small-data 2-D GPR (paper: shallow LML, wide far CI)")
    print(f"training points (log10 size, GHz):\n{np.round(result.X_train, 2)}")
    widest = result.widest_candidate()
    print(f"widest-CI candidate: log10(size)={widest[0]:.2f}, "
          f"freq={widest[1]:.1f} GHz "
          f"(CI width {result.candidate_ci_width.max():.2f})")
    print(f"LML landscape: {result.n_local_maxima} interior local maxima, "
          f"peakedness {result.lml_range:.2f}")

    fig4_range = fig4.run().lml_range
    print(f"compare Fig 4 peakedness (abundant data): {fig4_range:.1f} "
          f"-> shallow factor {fig4_range / max(result.lml_range, 1e-9):.1f}x")
    print("\nCI width surface (rows: size; cols: freq):")
    print(heatmap(result.ci_high_surface - result.ci_low_surface,
                  x_label="freq ->", y_label="size"))
    assert result.lml_range < fig4_range
