"""Ablation: plain GPR vs semi-parametric (trend + GP) extrapolation.

The paper's responses look near-linear in log-log space (Fig. 2), so one
might expect an explicit linear trend (universal kriging,
:class:`repro.gp.TrendGPR`) to extrapolate from cheap small-problem
measurements to unmeasured large problems much better than a zero-mean GP.

The measured outcome is more nuanced — and worth recording:

* a plain GP with *wide length-scale bounds* fits l ~ 3 (in log10-size
  units) and effectively carries the trend itself, extrapolating well;
* the *global* linear trend is biased by the setup-time floor that
  dominates small problems (fitted slope ~0.5 instead of the ~1.0 of the
  work-dominated tail), so TrendGPR extrapolates *worse* here;
* TrendGPR wins when the trend is genuinely global (see
  ``tests/gp/test_trend.py::test_extrapolates_better_than_plain_gp``).

Moral for practitioners: prefer generous length-scale bounds over drift
terms when the surface has regime changes; use explicit trends only for
regime-free responses.
"""

import numpy as np
from conftest import banner

from repro.al.metrics import rmse as rmse_metric
from repro.experiments.common import fig6_subset
from repro.gp import RBF, ConstantKernel, GaussianProcessRegressor, TrendGPR


def _trend_rmse(model, X_test, y_test):
    pred = model.predict(X_test)
    return float(np.sqrt(np.mean((pred - y_test) ** 2)))


def _narrow_kernel():
    return ConstantKernel(1.0, (1e-3, 1e3)) * RBF(1.0, (1e-2, 2.0))


def _compare(X, y, n_reps=5):
    median_size = np.median(X[:, 0])
    small = X[:, 0] <= median_size
    test_idx = np.flatnonzero(~small)
    rows = []
    rng = np.random.default_rng(0)
    for rep in range(n_reps):
        train_idx = rng.choice(np.flatnonzero(small), size=40, replace=False)

        wide = GaussianProcessRegressor(
            noise_variance=1e-1, noise_variance_bounds=(1e-2, 1e2),
            n_restarts=2, rng=rep,
        ).fit(X[train_idx], y[train_idx])
        narrow = GaussianProcessRegressor(
            kernel=_narrow_kernel(),
            noise_variance=1e-1, noise_variance_bounds=(1e-2, 1e2),
            n_restarts=2, rng=rep,
        ).fit(X[train_idx], y[train_idx])
        trend = TrendGPR(
            degree=1,
            gp_factory=lambda: GaussianProcessRegressor(
                kernel=_narrow_kernel(),
                noise_variance=1e-1, noise_variance_bounds=(1e-2, 1e2),
                n_restarts=2, rng=rep,
            ),
        ).fit(X[train_idx], y[train_idx])

        rows.append((
            rmse_metric(wide, X[test_idx], y[test_idx]),
            rmse_metric(narrow, X[test_idx], y[test_idx]),
            _trend_rmse(trend, X[test_idx], y[test_idx]),
            float(trend.trend_coefficients[1]),
        ))
    return np.asarray(rows)


def test_trend_extrapolation(once):
    X, y, _ = fig6_subset()
    rows = once(_compare, X, y)
    banner("ABLATION — extrapolating to unmeasured large problems "
           "(train on the cheap half)")
    print(f"{'rep':>4} {'wide-l GPR':>11} {'narrow-l GPR':>13} "
          f"{'trend GPR':>10} {'fitted slope':>13}")
    for i, (wide, narrow, trend, slope) in enumerate(rows):
        print(f"{i:>4} {wide:>11.4f} {narrow:>13.4f} {trend:>10.4f} "
              f"{slope:>13.3f}")
    print(f"\nmeans: wide {rows[:, 0].mean():.4f}, narrow {rows[:, 1].mean():.4f}, "
          f"trend {rows[:, 2].mean():.4f}")
    print("finding: the setup-time floor biases the global linear trend "
          "(slope ~0.5 << 1), so the wide-length-scale GP extrapolates best "
          "on this regime-switching surface.")
    # The reproducible finding: wide length-scale bounds dominate here.
    assert rows[:, 0].mean() < rows[:, 1].mean()
    assert rows[:, 0].mean() < rows[:, 2].mean()
    # The trend slope is visibly dragged below the tail's ~1.0.
    assert rows[:, 3].mean() < 0.8
