"""Ablation: rediscretized vs Galerkin (RAP) coarse-grid operators.

HPGMG rediscretizes its coarse levels; algebraic multigrid practice prefers
the variational ``P^T A P``.  For nested Q1 elements with a constant
coefficient the two are *identical* (asserted in the test suite); this
bench measures whether the difference matters on the variable-coefficient
flavours: V-cycle counts to 1e-9 and hierarchy setup time.
"""

import time

from conftest import banner

from repro.hpgmg import (
    GalerkinMultigridSolver,
    MultigridSolver,
    load_vector,
    make_problem,
    source_term,
)


def _compare(ne=32):
    rows = []
    for name in ("poisson1", "poisson2", "poisson2affine"):
        problem = make_problem(name)
        row = {"operator": name}
        for cls, key in (
            (MultigridSolver, "rediscretized"),
            (GalerkinMultigridSolver, "galerkin"),
        ):
            t0 = time.perf_counter()
            solver = cls(problem, ne, rng=0)
            setup = time.perf_counter() - t0
            f = load_vector(problem, solver.levels[0].mesh, source_term(problem))
            result = solver.solve(f, rtol=1e-9)
            row[key] = (result.cycles, setup, result.converged)
        rows.append(row)
    return rows


def test_galerkin_vs_rediscretized(once):
    rows = once(_compare)
    banner("ABLATION — coarse-operator construction (V-cycles to 1e-9, ne=32)")
    print(f"{'operator':>16} {'redisc cycles':>13} {'RAP cycles':>11} "
          f"{'redisc setup s':>15} {'RAP setup s':>12}")
    for row in rows:
        rc, rs, rconv = row["rediscretized"]
        gc_, gs, gconv = row["galerkin"]
        assert rconv and gconv
        print(f"{row['operator']:>16} {rc:>13} {gc_:>11} {rs:>15.3f} {gs:>12.3f}")
    # RAP never needs substantially more cycles than rediscretization.
    for row in rows:
        assert row["galerkin"][0] <= row["rediscretized"][0] + 1
