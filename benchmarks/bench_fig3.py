"""Bench: Fig. 3 — 1-D GPR predictive distributions vs problem size.

Paper observations to reproduce: (a) with all measurements the predictive
means nearly coincide across hyperparameter settings while small length
scales inflate the confidence band between points; (b) with 4 random points
the uncertainty (and even the means) blow up at the unmeasured domain edge.
"""

import numpy as np
from conftest import banner

from repro.experiments import fig3
from repro.viz import line_chart


def _panel_report(name, panel):
    print(f"\n[{name}] training points: {len(panel.y_train)}")
    print(f"{'l':>6} {'sigma_f':>8} {'mean CI width':>14} {'max sd':>8}")
    for c in panel.curves:
        print(f"{c.length_scale:>6.2f} {c.sigma_f:>8.2f} "
              f"{np.mean(c.ci_high - c.ci_low):>14.3f} {c.sd.max():>8.3f}")
    print(f"max disagreement between predictive means: "
          f"{panel.mean_disagreement():.3f}")


def test_fig3(once):
    result = once(fig3.run)
    banner("FIG 3 — 1-D GPR cross-section (NP=32, 2.4 GHz, poisson1)")
    _panel_report("(a) all measurements", result.all_points)
    _panel_report("(b) 4 random points", result.four_points)

    c = result.all_points.curves[1]  # l=1.0 reference curve
    print()
    print(line_chart(
        {
            "m mean": (c.grid, c.mean),
            "u upper CI": (c.grid, c.ci_high),
            "l lower CI": (c.grid, c.ci_low),
            "t train": (result.all_points.X_train[:, 0], result.all_points.y_train),
        },
        title="panel (a), l=1.0: log10 runtime vs log10 problem size",
        x_label="log10 N", y_label="log10 s",
    ))
    assert result.all_points.mean_ci_width(0.5) > result.all_points.mean_ci_width(2.0)
    assert result.four_points.mean_disagreement() > result.all_points.mean_disagreement()
