"""Bench: Fig. 7 — the sigma_n lower bound's effect on AL quality.

Paper (10 partitions x 40 iterations): with sigma_n^2 >= 1e-8 the GPR
overfits early — sigma_f(x) "drops to negligible values before the 5th
iteration" and AMSD undershoots; raising the floor to 1e-1 eliminates both,
making AMSD a usable convergence/termination signal.
"""

import numpy as np
from conftest import banner

from repro.experiments import fig7
from repro.viz import line_chart


def test_fig7(once):
    result = once(fig7.run, n_partitions=10, n_iterations=40, n_workers=4)
    banner("FIG 7 — noise-floor ablation (paper: 1e-1 floor fixes overfit)")
    for setting in (result.low_floor, result.high_floor):
        print(f"\nsigma_n^2 >= {setting.noise_floor:g}:")
        print(f"  min sigma_f(x) over iterations 0-4: "
              f"{setting.min_early_sd_selected:.2e}")
        print(f"  min AMSD over iterations 0-4:       "
              f"{setting.min_early_amsd:.2e}")
        print(f"  final mean RMSE: {setting.final_mean_rmse:.4f}   "
              f"final mean AMSD: {setting.final_mean_amsd:.4f}")
    print(f"\nearly-iteration collapse eliminated by the raised floor: "
          f"{result.collapse_eliminated}")

    its = np.arange(len(result.high_floor.batch.mean_series("rmse")))
    print()
    print(line_chart(
        {
            "r rmse (1e-1 floor)": (its, result.high_floor.batch.mean_series("rmse")),
            "a amsd (1e-1 floor)": (its, result.high_floor.batch.mean_series("amsd")),
            "s sd@selected (1e-1)": (its, result.high_floor.batch.mean_series("sd_at_selected")),
            "R rmse (1e-8 floor)": (its, result.low_floor.batch.mean_series("rmse")),
            "A amsd (1e-8 floor)": (its, result.low_floor.batch.mean_series("amsd")),
        },
        title="mean metric trajectories over 10 partitions",
        x_label="AL iteration", y_label="metric", logy=True,
    ))
    assert result.collapse_eliminated
