"""Bench: Fig. 8 — Variance Reduction vs Cost Efficiency.

Paper (50 partitions, run to pool exhaustion): Cost Efficiency crosses the
Variance-Reduction tradeoff curve at cumulative cost C = 1626 core-seconds
and afterwards delivers up to 38% lower error at equal cost (25/21/16/13%
at 2C/3C/5C/10C), the curves meeting again at the maximum cost.

The bench default (12 partitions x 120 iterations) keeps the wall time in
minutes while preserving the comparison's shape; EXPERIMENTS.md records a
full-exhaustion run.
"""

import numpy as np
from conftest import banner

from repro.experiments import fig8
from repro.viz import line_chart


def test_fig8(once):
    result = once(fig8.run, n_partitions=12, n_iterations=120, n_workers=4)
    banner("FIG 8 — VR vs CE (paper: C=1626, up to 38% reduction)")
    vr, ce = result.variance_reduction, result.cost_efficiency
    its = np.arange(len(vr.mean_series("rmse")))
    print(line_chart(
        {
            "v VR rmse": (its, vr.mean_series("rmse")),
            "c CE rmse": (its, ce.mean_series("rmse")),
        },
        title="(a) mean test RMSE per iteration",
        x_label="AL iteration", y_label="RMSE", logy=True,
    ))
    print()
    print(line_chart(
        {
            "v VR cumulative cost": (its, vr.mean_series("cumulative_cost")),
            "c CE cumulative cost": (its, ce.mean_series("cumulative_cost")),
        },
        title="(b top) mean cumulative cost per iteration",
        x_label="AL iteration", y_label="core-seconds", logy=True,
    ))
    print()
    grid = np.geomspace(
        max(result.vr_curve.costs[0], result.ce_curve.costs[0], 1.0),
        min(result.vr_curve.max_cost, result.ce_curve.max_cost),
        60,
    )
    print(line_chart(
        {
            "v VR error(cost)": (np.log10(grid), result.vr_curve.error_at(grid)),
            "c CE error(cost)": (np.log10(grid), result.ce_curve.error_at(grid)),
        },
        title="(b bottom) cost-error tradeoff curves",
        x_label="log10 cumulative cost", y_label="RMSE", logy=True,
    ))

    comp = result.comparison
    print(f"\ncrossover cost C = "
          f"{comp.crossover:,.0f} core-seconds (paper: 1626)"
          if comp.crossover is not None else "\nno crossover found")
    print(f"max relative error reduction past C: {comp.max_reduction:.1%} "
          f"(paper: 38%)")
    for mult, red in sorted(comp.reductions_at_multiples.items()):
        print(f"  at {mult:.0f}C: {red:+.1%}")
    assert comp.crossover is not None
    assert comp.max_reduction > 0.10
