"""Ablation: active learning on the *energy* response (the Power dataset).

The paper's framework covers "models for application runtime, energy
consumption, memory usage and many others"; its Fig. 8 study uses runtime,
where the response conveniently *is* the experiment cost.  For energy the
cost is still completion time, so Eq. 14's ``sigma - mu`` subtracts the
wrong quantity.  This bench compares, on the Power dataset:

* Variance Reduction (cost-blind),
* the paper's CostEfficiency applied naively to the energy response
  (treats predicted energy as the cost — a decent proxy, since energy and
  runtime correlate),
* :class:`~repro.al.strategies.CostModelEfficiency` with a *runtime* cost
  model (the principled generalization).
"""

import numpy as np
from conftest import banner

from repro.al import (
    CostEfficiency,
    CostModelEfficiency,
    VarianceReduction,
    default_model_factory,
    run_batch,
)
from repro.datasets import DesignSpec
from repro.experiments.common import power_dataset
from repro.gp import GaussianProcessRegressor


def _data():
    ds = power_dataset().subset(operator="poisson2")
    spec = DesignSpec(
        variables=("problem_size", "np_ranks", "freq_ghz"),
        response="energy_joules",
        log_features=frozenset({"problem_size", "np_ranks"}),
    )
    X, y = ds.design_matrix(spec)
    costs = ds.costs()  # core-seconds: the actual experiment cost
    return X, y, costs


def _run_all(X, y, costs, n_partitions=6, n_iterations=40):
    # Offline cost model: log10 core-seconds over the configuration space
    # (in an online campaign this would be refreshed from observed costs).
    cost_gp = GaussianProcessRegressor(
        noise_variance=1e-2, noise_variance_bounds=(1e-2, 1e2),
        n_restarts=1, rng=0, normalize_y=True,
    ).fit(X, np.log10(costs))
    common = dict(
        n_partitions=n_partitions,
        n_iterations=n_iterations,
        seed=41,
        model_factory=default_model_factory(1e-1),
        n_workers=4,
    )
    return {
        "variance-reduction": run_batch(
            X, y, costs, strategy_factory=lambda i: VarianceReduction(), **common
        ),
        "ce (energy as cost)": run_batch(
            X, y, costs, strategy_factory=lambda i: CostEfficiency(), **common
        ),
        "ce (runtime cost model)": run_batch(
            X, y, costs,
            strategy_factory=lambda i: CostModelEfficiency(cost_model=cost_gp),
            **common,
        ),
    }


def test_energy_al(once):
    X, y, costs = _data()
    results = once(_run_all, X, y, costs)
    banner("ABLATION — AL on the energy response (Power dataset, poisson2)")
    print(f"{'strategy':>26} {'final RMSE':>11} {'total cost':>13}")
    for name, batch in results.items():
        print(f"{name:>26} {batch.mean_series('rmse')[-1]:>11.4f} "
              f"{batch.mean_series('cumulative_cost')[-1]:>13,.0f}")
    vr_cost = results["variance-reduction"].mean_series("cumulative_cost")[-1]
    cm_cost = results["ce (runtime cost model)"].mean_series("cumulative_cost")[-1]
    # The cost-model strategy must spend less than cost-blind VR for the
    # same iteration budget while staying in the same error regime.
    assert cm_cost < vr_cost
    cm_rmse = results["ce (runtime cost model)"].mean_series("rmse")[-1]
    vr_rmse = results["variance-reduction"].mean_series("rmse")[-1]
    assert cm_rmse < 4 * vr_rmse + 0.1
