"""Ablation: are the GPR's predictive intervals calibrated?

Active learning trusts sigma(x) twice over — for candidate selection and
for the AMSD stopping rule — so this bench measures the empirical coverage
of the predictive intervals on held-out data for the noise-floor settings
of Fig. 7.  Expected picture: the 1e-8 floor is overconfident with small
training sets (the Fig. 7 overfitting pathology, seen here as coverage far
below nominal), while the paper's 1e-1 floor is conservative (coverage at
or above nominal) at the price of sharpness.
"""

import numpy as np
from conftest import banner

from repro.al import default_model_factory, interval_coverage, random_partition
from repro.al.calibration import coverage_curve
from repro.experiments.common import fig6_subset


def _coverage_for_floor(X, y, floor, n_train, n_seeds=6):
    reports = []
    for seed in range(n_seeds):
        part = random_partition(X.shape[0], rng=seed)
        rng = np.random.default_rng(seed)
        train = rng.choice(part.active, size=n_train, replace=False)
        model = default_model_factory(floor)()
        model.fit(X[train], y[train])
        reports.append(interval_coverage(model, X[part.test], y[part.test]))
    levels = reports[0].levels
    empirical = tuple(
        float(np.mean([r.empirical[i] for r in reports]))
        for i in range(len(levels))
    )
    sharpness = float(np.mean([r.sharpness for r in reports]))
    miscal = float(np.mean([abs(e - l) for e, l in zip(empirical, levels)]))
    from repro.al.calibration import CoverageReport

    return CoverageReport(
        levels=levels,
        empirical=empirical,
        mean_absolute_miscalibration=miscal,
        sharpness=sharpness,
    )


def _sweep(X, y):
    out = {}
    for floor in (1e-8, 1e-1):
        for n_train in (8, 40):
            out[(floor, n_train)] = _coverage_for_floor(X, y, floor, n_train)
    return out


def test_interval_coverage(once):
    X, y, _ = fig6_subset()
    results = once(_sweep, X, y)
    banner("ABLATION — predictive-interval coverage vs noise floor")
    for (floor, n_train), report in results.items():
        print(f"\nsigma_n^2 >= {floor:g}, {n_train} training points:")
        print(coverage_curve(report))
    small_low = results[(1e-8, 8)]
    small_high = results[(1e-1, 8)]
    i95 = small_low.levels.index(0.95)
    # The raised floor must not be overconfident at 95% with few points...
    assert small_high.empirical[i95] >= 0.9
    # ...and must cover at least as well as the 1e-8 floor does.
    assert small_high.empirical[i95] >= small_low.empirical[i95] - 0.02
    # With ample data both floors cover well at 95%.
    assert results[(1e-8, 40)].empirical[i95] > 0.85
