"""Bench: regenerate the paper's Table I (dataset parameters).

Paper values for reference:

    Performance: 3246 jobs, Runtime 0.005-458.436 s
    Power:       640 jobs, Runtime 0.005-458.436 s, Energy 6.4e3-1.1e5 J
    Operators:   poisson1, poisson2, poisson2affine
    Sizes:       1.7e3-1.1e9 | NP: 1..128 | Freq: 1.2-2.4 GHz
"""

from conftest import banner

from repro.experiments import table1


def test_table1(once):
    result = once(table1.run)
    banner("TABLE I — paper: 3246/640 jobs, runtime 0.005-458 s, "
           "energy 6.4e3-1.1e5 J")
    print(result.text)
    assert result.performance.n_jobs == 3246
    assert result.power.n_jobs == 640
