"""Bench: Fig. 2 — log-transformed subsets and the log-log linearity check.

The paper: "confirms the linear growth of Runtime along the problem size
dimension" on log scales.  We print the fitted slope/R^2 per NP level.
"""

from conftest import banner

from repro.experiments import fig2


def test_fig2(once):
    result = once(fig2.run)
    banner("FIG 2 — log-log slope fits (paper: linear growth, slope ~ 1)")
    print(f"{'dataset':>12} {'response':>24} {'NP':>4} {'slope':>8} {'R^2':>7}")
    for fit in result.fits:
        print(f"{fit.dataset:>12} {fit.response:>24} {fit.np_ranks:>4} "
              f"{fit.slope:>8.3f} {fit.r_squared:>7.3f}")
    runtime_fits = [f for f in result.fits if f.dataset == "Performance"]
    assert all(0.7 < f.slope < 1.3 for f in runtime_fits)
