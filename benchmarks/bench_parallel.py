"""Bench: the process-parallel execution layer (ISSUE 5 acceptance).

The AL pipeline fans out in two places — partition batches (Figs. 7/8
average 10-50 independent AL trajectories) and replicate campaign sweeps —
and both used to run on a ThreadPoolExecutor even though the work is
GIL-bound numpy/scipy, so "parallel" bought nothing.  `repro.parallel`
replaces that with a process pool whose results are bit-identical to the
serial loop.

This bench reports, for a Fig. 8-shaped partition batch and for a
replicate campaign sweep:

* wall-clock serial vs ``backend="process"`` — the acceptance target is a
  >= 3x speedup on 8 cores (asserted only when the machine has the cores:
  on smaller hosts the timings are printed for the record and only the
  determinism contract is enforced);
* bit-identical RMSE / AMSD / cumulative-cost trajectories and replicate
  observation sequences across backends — asserted everywhere, always.
"""

import os
import time

import numpy as np
from conftest import banner

from repro.al import VarianceReduction, default_model_factory, run_batch
from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.al.replicates import run_replicates
from repro.cluster.faults import FaultConfig, FaultyExecutor
from repro.datasets.generate import ModelExecutor

#: Cores needed before the >= 3x wall-clock assertion is armed.
_CORES_FOR_SPEEDUP = 8
_SPEEDUP_TARGET = 3.0


def _problem(n=240, seed=0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(0, 10, size=n))[:, np.newaxis]
    y = 0.5 * X[:, 0] + np.sin(X[:, 0]) + 0.05 * rng.standard_normal(n)
    costs = np.abs(y) + 1.0
    return X, y, costs


def _strategy(i):
    return VarianceReduction(seed=i)


class _CampaignFactory:
    """Picklable ``(index, rng) -> OnlineCampaign`` for the sweep bench."""

    def __init__(self, n_rounds=4, batch=2, crash_rate=0.2):
        self.n_rounds = n_rounds
        self.batch = batch
        self.crash_rate = crash_rate
        sizes = [48**3, 96**3, 192**3]
        nps = [1, 8, 32]
        freqs = [1.2, 2.4]
        self.candidates = np.array(
            [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
        )

    def __call__(self, index, rng):
        executor = FaultyExecutor(
            ModelExecutor(), FaultConfig(crash_rate=self.crash_rate)
        )
        return OnlineCampaign(
            CampaignConfig(
                operator="poisson1",
                candidates=self.candidates,
                batch_size=self.batch,
                n_rounds=self.n_rounds,
            ),
            executor,
            rng=rng,
        )


def _batch(backend, n_workers):
    X, y, costs = _problem()
    return run_batch(
        X, y, costs,
        strategy_factory=_strategy,
        n_partitions=8,
        n_iterations=30,
        seed=1,
        model_factory=default_model_factory(noise_floor=1e-2),
        n_workers=n_workers,
        backend=backend,
    )


def _timed(fn, *args):
    t0 = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - t0, out


def test_parallel_restart_fit(once):
    """Restart-heavy GPR fit: executor-parallel search, identical optimum."""
    from repro.gp import GaussianProcessRegressor
    from repro.parallel import ParallelMap

    cores = os.cpu_count() or 1
    workers = max(2, min(8, cores))  # >=2 so the pool path is exercised
    X, y, _ = _problem(n=120)
    kw = dict(noise_variance=0.05, n_restarts=16, rng=0)

    t_serial, serial = _timed(
        lambda: GaussianProcessRegressor(**kw).fit(X, y)
    )
    t_process, fanned = once(
        lambda: _timed(
            lambda: GaussianProcessRegressor(
                **kw, executor=ParallelMap("process", workers)
            ).fit(X, y)
        )
    )

    banner("bench_parallel: multi-restart GPR fit (17 L-BFGS-B starts)")
    print(f"serial wall-clock:   {t_serial:8.2f} s")
    print(f"process wall-clock:  {t_process:8.2f} s")
    print(f"speedup:             {t_serial / t_process:8.2f}x")

    np.testing.assert_array_equal(serial.kernel_.theta, fanned.kernel_.theta)
    assert serial.noise_variance_ == fanned.noise_variance_
    assert serial.lml_ == fanned.lml_
    print("determinism:         selected hyperparameters identical, exact")

    if cores >= _CORES_FOR_SPEEDUP:
        assert t_serial / t_process >= _SPEEDUP_TARGET
    else:
        print(f"speedup assertion:   skipped ({cores} < "
              f"{_CORES_FOR_SPEEDUP} cores)")


def test_parallel_partition_batch(once):
    """Fig. 8-shaped batch: serial vs process pool, trajectories identical."""
    cores = os.cpu_count() or 1
    workers = max(2, min(8, cores))  # >=2 so the pool path is exercised

    t_serial, serial = _timed(_batch, "serial", 1)
    t_process, process = once(lambda: _timed(_batch, "process", workers))

    banner("bench_parallel: partition batch (8 partitions x 30 iterations)")
    print(f"cores available:     {cores}  (pool width {workers})")
    print(f"serial wall-clock:   {t_serial:8.2f} s")
    print(f"process wall-clock:  {t_process:8.2f} s")
    print(f"speedup:             {t_serial / t_process:8.2f}x"
          f"  (target >= {_SPEEDUP_TARGET}x on {_CORES_FOR_SPEEDUP}+ cores)")

    for attr in ("rmse", "amsd", "cumulative_cost", "sd_at_selected"):
        np.testing.assert_array_equal(
            serial.series_matrix(attr), process.series_matrix(attr),
            err_msg=f"{attr} diverged between serial and process backends",
        )
    print("determinism:         serial == process (rmse/amsd/cost/sd), exact")

    if cores >= _CORES_FOR_SPEEDUP:
        assert t_serial / t_process >= _SPEEDUP_TARGET, (
            f"expected >= {_SPEEDUP_TARGET}x on {cores} cores, got "
            f"{t_serial / t_process:.2f}x"
        )
    else:
        print(f"speedup assertion:   skipped ({cores} < "
              f"{_CORES_FOR_SPEEDUP} cores)")


def test_parallel_replicate_sweep(once):
    """Replicate campaign sweep: serial vs process, observation-identical."""
    cores = os.cpu_count() or 1
    workers = max(2, min(8, cores))  # >=2 so the pool path is exercised
    factory = _CampaignFactory()

    t_serial, serial = _timed(
        lambda: run_replicates(factory, 8, seed=5, n_workers=1, backend="serial")
    )
    t_process, process = once(
        lambda: _timed(
            lambda: run_replicates(
                factory, 8, seed=5, n_workers=workers, backend="process"
            )
        )
    )

    banner("bench_parallel: replicate campaign sweep (8 replicates)")
    print(f"serial wall-clock:   {t_serial:8.2f} s")
    print(f"process wall-clock:  {t_process:8.2f} s")
    print(f"speedup:             {t_serial / t_process:8.2f}x")

    ser = {r.index: r.y for r in serial.replicates}
    par = {r.index: r.y for r in process.replicates}
    assert ser == par, "replicate observations diverged across backends"
    np.testing.assert_array_equal(
        serial.series("simulated_seconds"), process.series("simulated_seconds")
    )
    print("determinism:         serial == process (y, simulated_seconds), exact")

    if cores >= _CORES_FOR_SPEEDUP:
        assert t_serial / t_process >= _SPEEDUP_TARGET
    else:
        print(f"speedup assertion:   skipped ({cores} < "
              f"{_CORES_FOR_SPEEDUP} cores)")
