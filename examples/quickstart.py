#!/usr/bin/env python3
"""Quickstart: GPR + active learning on a 1-D performance curve.

Builds a small runtime dataset from the analytic HPGMG-FE model (problem
size sweep at NP=32, 2.4 GHz), fits a Gaussian process, runs 12 iterations
of Variance-Reduction active learning from a single seed experiment, and
prints the predictive distribution and the error trajectory as ASCII
charts.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.al import ActiveLearner, VarianceReduction, default_model_factory, random_partition
from repro.perfmodel import PERFORMANCE_NOISE, RuntimeModel
from repro.viz import line_chart


def make_dataset(n: int = 60, seed: int = 0):
    """Noisy log-runtime measurements over a log problem-size sweep."""
    rng = np.random.default_rng(seed)
    model = RuntimeModel()
    sizes = np.geomspace(2e3, 1e9, n)
    clean = model.runtime("poisson1", sizes, 32, 2.4)
    noisy = PERFORMANCE_NOISE.apply(clean, rng)
    X = np.log10(sizes)[:, np.newaxis]
    y = np.log10(noisy)
    costs = noisy * 32  # core-seconds
    return X, y, costs


def main() -> None:
    X, y, costs = make_dataset()
    part = random_partition(X.shape[0], rng=1)
    learner = ActiveLearner(
        X, y, costs, part,
        VarianceReduction(),
        model_factory=default_model_factory(noise_floor=1e-2),
    )
    trace = learner.run(12)

    model = learner.model
    grid = np.linspace(X.min(), X.max(), 80)[:, np.newaxis]
    mean, sd = model.predict(grid, return_std=True)
    print(line_chart(
        {
            "mean prediction": (grid[:, 0], mean),
            "upper 95% CI": (grid[:, 0], mean + 2 * sd),
            "lower 95% CI": (grid[:, 0], mean - 2 * sd),
            "training data": (model.X_train_[:, 0], model.y_train_),
        },
        title="GPR after 12 AL iterations (log10 runtime vs log10 problem size)",
        x_label="log10 problem size",
        y_label="log10 runtime [s]",
    ))
    print()
    its = trace.series("iteration")
    print(line_chart(
        {
            "rmse (test)": (its, trace.series("rmse")),
            "amsd (pool)": (its, trace.series("amsd")),
        },
        title="AL convergence",
        x_label="iteration",
        y_label="metric",
        logy=True,
    ))
    final = trace.final
    print(f"\nfinal test RMSE: {final.rmse:.4f} (log10 space)"
          f"   AMSD: {final.amsd:.4f}"
          f"   total experiment cost: {final.cumulative_cost:,.0f} core-seconds")


if __name__ == "__main__":
    main()
