#!/usr/bin/env python3
"""Run a benchmarking campaign through the simulated CloudLab testbed.

Shows the data-collection pipeline of the paper's Section IV end to end:
define a batch of HPGMG-FE job specs, submit them to the SLURM-like
scheduler (4 Wisconsin nodes, FIFO + EASY backfill), sample IPMI power
traces during execution, integrate energies, and print the resulting
46-attribute accounting records and campaign statistics.

Run:  python examples/cluster_campaign.py
"""

import numpy as np

from repro.cluster import (
    IPMISampler,
    JobSpec,
    PowerModel,
    SlurmSimulator,
    wisconsin_cluster,
)
from repro.datasets import ModelExecutor
from repro.viz import histogram


def main() -> None:
    cluster = wisconsin_cluster()
    print(f"testbed: {cluster.n_nodes} x {cluster.node.name} "
          f"({cluster.node.n_sockets}x{cluster.node.cpu.model}, "
          f"{cluster.node.total_cores} cores / {cluster.node.total_threads} threads, "
          f"{cluster.node.ram_gb:.0f} GB)")

    rng = np.random.default_rng(11)
    specs = []
    for size in (48**3, 96**3, 192**3):
        for np_ranks in (8, 32, 64, 128):
            for rep in range(2):
                specs.append(JobSpec(
                    operator="poisson2",
                    problem_size=float(size),
                    np_ranks=np_ranks,
                    freq_ghz=float(rng.choice([1.2, 1.8, 2.4])),
                    repeat_index=rep,
                ))
    print(f"submitting {len(specs)} jobs...")

    sim = SlurmSimulator(
        cluster,
        ModelExecutor(),
        power_model=PowerModel(),
        sampler=IPMISampler(),
        rng=42,
    )
    records = sim.run_batch(specs)

    print(f"\n{'job':>4} {'size':>11} {'np':>4} {'GHz':>4} {'wait[s]':>8} "
          f"{'run[s]':>8} {'nodes':>5} {'energy[J]':>10} {'usable':>6}")
    for r in records[:12]:
        energy = f"{r.energy_joules:,.0f}" if r.energy_joules is not None else "-"
        print(f"{r.job_id:>4} {r.problem_size:>11.3g} {r.np_ranks:>4} "
              f"{r.freq_ghz:>4.1f} {r.wait_seconds:>8.1f} {r.runtime_seconds:>8.2f} "
              f"{r.n_nodes:>5} {energy:>10} {str(r.energy_usable):>6}")
    print(f"  ... ({len(records)} records total)")

    makespan = max(r.end_time for r in records)
    busy = sum(r.runtime_seconds * r.n_nodes for r in records)
    print(f"\ncampaign makespan: {makespan:,.1f}s simulated")
    print(f"node utilization: {busy / (makespan * cluster.n_nodes):.1%}")
    usable = sum(1 for r in records if r.energy_usable)
    print(f"jobs with usable energy traces: {usable}/{len(records)} "
          f"(the paper's gap-filtering effect)")
    print(histogram([r.runtime_seconds for r in records], bins=8,
                    title="\njob runtime distribution [s]"))


if __name__ == "__main__":
    main()
