#!/usr/bin/env python3
"""Energy modeling on the Power dataset: GPR over (size, frequency).

Reproduces the paper's energy-consumption modeling thread: regenerate the
640-job Power dataset (IPMI traces, trapezoidal integration, gap
filtering), fit a GPR to log energy over (log problem size, CPU frequency)
for one operator/NP slice, and display the predicted energy surface and
its uncertainty.  Also demonstrates the power-trace machinery directly on
a single simulated job.

Run:  python examples/energy_modeling.py
"""

import numpy as np

from repro.cluster import IPMISampler, PowerModel, integrate_energy, trace_is_usable
from repro.datasets import DesignSpec, generate_power_dataset
from repro.gp import GaussianProcessRegressor
from repro.viz import heatmap, histogram


def trace_demo() -> None:
    """One job's IPMI power trace and energy integral."""
    pm = PowerModel()
    sampler = IPMISampler()
    rng = np.random.default_rng(7)
    duration = 120.0
    watts = float(pm.node_power(32, 2.1))
    trace = sampler.sample(duration, watts, rng)
    energy = integrate_energy(trace, duration)
    print(f"simulated 120s job on one node at 2.1 GHz: mean draw {watts:.0f} W")
    print(f"IPMI trace: {trace.n_records} records "
          f"(gaps removed {121 - trace.n_records}); "
          f"usable: {trace_is_usable(trace, duration)}")
    print(f"trapezoidal energy estimate: {energy:,.0f} J "
          f"(ideal {watts * duration:,.0f} J)")
    print(histogram(trace.watts, bins=10, title="power reading distribution [W]"))


def main() -> None:
    trace_demo()

    print("\ngenerating the 640-job Power dataset "
          "(SLURM sim + IPMI traces + gap filtering)...")
    power = generate_power_dataset(seed=2016)

    # Long jobs dominate the Power dataset, so the richest slice varies NP
    # and frequency at the largest problem size (the paper's Power subsets
    # are similarly size-sparse, Fig. 1b).
    largest = max(r.problem_size for r in power.records)
    sub = power.subset(operator="poisson2", problem_size=largest)
    print(f"poisson2 @ {largest:.3g} DOF slice: {len(sub)} jobs with usable energy")
    X, y = sub.design_matrix(
        DesignSpec(variables=("np_ranks", "freq_ghz"),
                   response="energy_joules",
                   log_features=frozenset({"np_ranks"}))
    )

    model = GaussianProcessRegressor(
        noise_variance=1e-1, noise_variance_bounds=(1e-2, 1e2),
        n_restarts=3, normalize_y=True, rng=0,
    )
    model.fit(X, y)
    print(f"fitted GPR: {model!r}  (LML {model.lml_:.1f})")

    nps = np.linspace(X[:, 0].min(), X[:, 0].max(), 14)
    freqs = np.linspace(X[:, 1].min(), X[:, 1].max(), 10)
    NN, FF = np.meshgrid(nps, freqs, indexing="ij")
    query = np.column_stack([NN.ravel(), FF.ravel()])
    mean, sd = model.predict(query, return_std=True)
    print("\npredicted log10 energy [J] "
          "(rows: NP small->large, cols: freq low->high):")
    print(heatmap(mean.reshape(14, 10), x_label="freq", y_label="log10 NP",
                  mark_max=False))
    print("\npredictive SD (where would AL run the next power experiment?):")
    print(heatmap(sd.reshape(14, 10), x_label="freq", y_label="log10 NP",
                  mark_max=True))
    i = int(np.argmax(sd))
    print(f"\nAL would next measure: NP~{10 ** query[i, 0]:.0f}, "
          f"freq={query[i, 1]:.1f} GHz (sd={sd[i]:.3f})")


if __name__ == "__main__":
    main()
