#!/usr/bin/env python3
"""Parallel online campaigns: batched AL through the cluster scheduler.

The paper's Section VI: "some experiments could reasonably be run in
parallel which adds additional scheduling concerns and may indicate a less
greedy selection strategy."  This example runs the same 16-experiment AL
budget with batch sizes 1, 2, 4 and 8 through the simulated 4-node
testbed, showing the wall-clock/adaptivity tradeoff: bigger batches keep
the cluster busy (short campaigns) but pick later experiments with staler
models.

Run:  python examples/parallel_campaign.py
"""

import numpy as np

from repro.al.campaign import CampaignConfig, OnlineCampaign
from repro.datasets.generate import ModelExecutor
from repro.perfmodel import RuntimeModel
from repro.viz import line_chart


def candidates() -> np.ndarray:
    sizes = [32**3, 64**3, 96**3, 128**3, 192**3, 256**3]
    nps = [1, 4, 16, 32, 64, 128]
    freqs = [1.2, 1.8, 2.4]
    return np.array(
        [(s, p, f) for s in sizes for p in nps for f in freqs], dtype=float
    )


def probe_rmse(model) -> float:
    """Model error against the analytic ground truth on a probe grid."""
    rm = RuntimeModel()
    rng = np.random.default_rng(7)
    rows = candidates()[rng.choice(len(candidates()), 40, replace=False)]
    X = np.column_stack([np.log10(rows[:, 0]), np.log2(rows[:, 1]), rows[:, 2]])
    truth = np.log10(
        [float(rm.runtime("poisson1", s, int(p), f)) for s, p, f in rows]
    )
    return float(np.sqrt(np.mean((model.predict(X) - truth) ** 2)))


def main() -> None:
    budget = 16
    print(f"online AL campaigns, {budget}-experiment budget, 4-node testbed\n")
    print(f"{'batch':>6} {'rounds':>7} {'sim wall-clock [s]':>19} "
          f"{'core-seconds':>13} {'probe RMSE':>11}")
    walls, rmses, batches = [], [], []
    for batch_size in (1, 2, 4, 8):
        campaign = OnlineCampaign(
            CampaignConfig(
                operator="poisson1",
                candidates=candidates(),
                batch_size=batch_size,
                n_rounds=budget // batch_size,
            ),
            ModelExecutor(),
            rng=3,
        )
        result = campaign.run()
        rmse = probe_rmse(result.model)
        print(f"{batch_size:>6} {budget // batch_size:>7} "
              f"{result.simulated_seconds:>19,.1f} "
              f"{result.cpu_core_seconds:>13,.0f} {rmse:>11.4f}")
        walls.append(result.simulated_seconds)
        rmses.append(rmse)
        batches.append(batch_size)

    print()
    print(line_chart(
        {
            "w wall-clock (s)": (np.log2(batches), walls),
            "e probe RMSE x1000": (np.log2(batches), [r * 1000 for r in rmses]),
        },
        title="the parallelism tradeoff (x = log2 batch size)",
        x_label="log2 batch size", y_label="value",
    ))
    print("\ntakeaway: batching buys wall-clock (idle nodes get used) at a "
          "modest adaptivity cost — the scheduling concern the paper "
          "anticipated.")


if __name__ == "__main__":
    main()
