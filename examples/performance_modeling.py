#!/usr/bin/env python3
"""The paper's prototype as a library facade: PerformanceModeler.

Builds runtime, memory and energy models of HPGMG-FE from the recorded
datasets in a few lines each, predicts unseen configurations with
uncertainty, and asks the models which experiments to run next — the
"diverse performance models" workflow of the paper's contribution list.

Run:  python examples/performance_modeling.py
"""

from repro.datasets import generate_performance_dataset, generate_power_dataset
from repro.modeler import PerformanceModeler


def main() -> None:
    print("generating datasets (cached analytic campaigns)...")
    perf = generate_performance_dataset(seed=2016)
    power = generate_power_dataset(seed=2016)

    # --- runtime model ------------------------------------------------------
    runtime = PerformanceModeler(
        perf.subset(operator="poisson2"),
        variables=("problem_size", "np_ranks", "freq_ghz"),
        rng=0,
    ).fit()
    print("\n[runtime model: poisson2, 3 controlled variables]")
    print(f"LOO-CV RMSE (log10): {runtime.cross_validated_rmse():.3f}")
    for config in [(1e8, 32, 2.4), (1e8, 32, 1.2), (1e9, 128, 2.4)]:
        median, sd_factor = runtime.predict_response([config])
        print(f"  N={config[0]:.0e} NP={config[1]:>3} f={config[2]} GHz -> "
              f"{median[0]:8.2f} s  (x/ {sd_factor[0]:.2f})")

    # --- memory model -------------------------------------------------------
    memory = PerformanceModeler(
        perf.subset(operator="poisson2", freq_ghz=2.4),
        variables=("problem_size", "np_ranks"),
        response="max_rss_mb_node0",
        rng=0,
    ).fit()
    median, sd = memory.predict_response([(5e8, 64)])
    print("\n[memory model] predicted max RSS per node at N=5e8, NP=64: "
          f"{median[0]:,.0f} MB (x/ {sd[0]:.2f})")

    # --- energy model -------------------------------------------------------
    energy = PerformanceModeler(
        power.subset(operator="poisson2"),
        variables=("problem_size", "np_ranks", "freq_ghz"),
        response="energy_joules",
        rng=0,
    ).fit()
    median, sd = energy.predict_response([(1e9, 64, 1.8)])
    print(f"[energy model] predicted energy at N=1e9, NP=64, 1.8 GHz: "
          f"{median[0]:,.0f} J (x/ {sd[0]:.2f})")

    # --- what should we measure next? ---------------------------------------
    print("\n[active-learning suggestions from the energy model]")
    for s in energy.suggest_experiments(3, strategy="variance"):
        v = s.values
        print(f"  run N={v['problem_size']:.3g}, NP={v['np_ranks']:.0f}, "
              f"f={v['freq_ghz']:.1f} GHz  "
              f"(sd {s.predictive_sd_log10:.3f} in log10 J, "
              f"expected {s.predicted_response:,.0f} J)")
    summary = energy.uncertainty_summary()
    print(f"  pool AMSD {summary['amsd']:.3f}, noise sd {summary['noise_sd']:.3f}")


if __name__ == "__main__":
    main()
