#!/usr/bin/env python3
"""The paper's offline study: Variance Reduction vs Cost Efficiency.

Regenerates the Performance dataset, carves out the paper's evaluation
subset (operator=poisson1, NP=32 — 251 jobs), runs both AL strategies over
several random partitions, and prints the Fig. 8 readout: convergence
trajectories, cost-error tradeoff curves, the crossover cost C and the
relative error reductions at multiples of C.

Run:  python examples/offline_al_study.py  [--partitions N] [--iterations N]
"""

import argparse

import numpy as np

from repro.al import compare_strategies, tradeoff_curve
from repro.experiments import fig8
from repro.viz import line_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--partitions", type=int, default=8,
                        help="random partitions per strategy (paper: 50)")
    parser.add_argument("--iterations", type=int, default=60,
                        help="AL iterations per partition (paper: to exhaustion)")
    args = parser.parse_args()

    print(f"Running {args.partitions} partitions x {args.iterations} iterations "
          f"per strategy (this regenerates the 3,246-job dataset first)...")
    result = fig8.run(n_partitions=args.partitions, n_iterations=args.iterations)

    vr, ce = result.variance_reduction, result.cost_efficiency
    its = np.arange(len(vr.mean_series("rmse")))
    print()
    print(line_chart(
        {
            "vr rmse": (its, vr.mean_series("rmse")),
            "ce rmse": (its, ce.mean_series("rmse")),
        },
        title="Fig 8a: mean test RMSE per AL iteration",
        x_label="iteration", y_label="RMSE", logy=True,
    ))
    print()
    print(line_chart(
        {
            "vr cumulative cost": (its, vr.mean_series("cumulative_cost")),
            "ce cumulative cost": (its, ce.mean_series("cumulative_cost")),
        },
        title="Fig 8b (top): mean cumulative cost per iteration",
        x_label="iteration", y_label="core-seconds", logy=True,
    ))
    print()
    vc, cc = result.vr_curve, result.ce_curve
    grid = np.geomspace(max(vc.costs[0], cc.costs[0], 1.0),
                        min(vc.max_cost, cc.max_cost), 60)
    print(line_chart(
        {
            "v VR error(cost)": (np.log10(grid), vc.error_at(grid)),
            "c CE error(cost)": (np.log10(grid), cc.error_at(grid)),
        },
        title="Fig 8b (bottom): cost-error tradeoff curves",
        x_label="log10 cumulative cost [core-seconds]", y_label="RMSE", logy=True,
    ))

    comp = result.comparison
    print("\n=== Strategy comparison (paper: C=1626, max reduction 38%, "
          "25/21/16/13% at 2C/3C/5C/10C) ===")
    if comp.crossover is None:
        print("no sustained crossover found in this reduced run")
    else:
        print(f"crossover cost C = {comp.crossover:,.0f} core-seconds")
        print(f"max relative error reduction beyond C = {comp.max_reduction:.1%}")
        for mult, red in sorted(comp.reductions_at_multiples.items()):
            print(f"  at {mult:.0f}C: {red:.1%}")


if __name__ == "__main__":
    main()
