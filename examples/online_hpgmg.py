#!/usr/bin/env python3
"""Online active learning: each experiment is a *real* multigrid solve.

The paper runs AL offline against a recorded database but names online
operation — "selecting an experiment, running it, and using the experiment
outcome to update the underlying GPR model" — as the target use case.
This example does exactly that with the mini HPGMG-FE benchmark: the
candidate space is (problem size, CPU frequency); querying a candidate runs
the actual Q1 finite-element Full-Multigrid solver, measures its wall
time, applies the simulated DVFS slowdown, and feeds the measurement back
into the GP.

Run:  python examples/online_hpgmg.py  [--budget-seconds 20]
"""

import argparse
import time

import numpy as np

from repro.al import OnlineHPGMGOracle
from repro.gp import GaussianProcessRegressor
from repro.viz import heatmap


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-seconds", type=float, default=20.0,
                        help="wall-clock budget for running experiments")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    oracle = OnlineHPGMGOracle("poisson1", ne_choices=(4, 8, 16, 32), rng=args.seed)
    candidates = oracle.candidate_grid()
    print(f"candidate space: {candidates.shape[0]} (log10 DOF, GHz) points; "
          f"budget {args.budget_seconds:.0f}s of real solves")

    X_train = np.empty((0, 2))
    y_train = np.empty(0)
    model = GaussianProcessRegressor(
        noise_variance=1e-2, noise_variance_bounds=(1e-2, 1e2),
        n_restarts=2, rng=args.seed,
    )

    # Seed with the smallest configuration (the "verify correctness" run).
    obs = oracle.query(candidates[0])
    X_train = np.vstack([X_train, obs.x])
    y_train = np.append(y_train, obs.y)

    start = time.perf_counter()
    iteration = 0
    while time.perf_counter() - start < args.budget_seconds:
        model.fit(X_train, y_train)
        _, sd = model.predict(candidates, return_std=True)
        pick = candidates[int(np.argmax(sd))]
        obs = oracle.query(pick)
        X_train = np.vstack([X_train, obs.x])
        y_train = np.append(y_train, obs.y)
        iteration += 1
        print(f"  iter {iteration:2d}: ran dofs=10^{obs.x[0]:.2f} at "
              f"{obs.x[1]:.1f} GHz -> runtime {10 ** obs.y:.4f}s "
              f"(max pool sd was {sd.max():.3f})")

    model.fit(X_train, y_train)
    mean, sd = model.predict(candidates, return_std=True)
    n_ne = len(oracle.ne_choices)
    n_f = len(oracle.freq_choices)
    print("\npredicted log10 runtime over the candidate grid "
          "(rows: problem size small->large, cols: frequency low->high):")
    print(heatmap(mean.reshape(n_ne, n_f), x_label="freq", y_label="size",
                  mark_max=False))
    print("\nremaining predictive SD (should be roughly uniform after AL):")
    print(heatmap(sd.reshape(n_ne, n_f), x_label="freq", y_label="size",
                  mark_max=True))
    print(f"\nran {iteration} real multigrid solves; "
          f"final mean predictive SD {sd.mean():.3f}")


if __name__ == "__main__":
    main()
