#!/usr/bin/env python3
"""Continuous-domain active learning (the paper's Section VI extension).

When the controlled variables are continuous (problem size is near-
continuous in practice), the Active pool "cannot be treated as finite".
This example learns the runtime surface of the analytic HPGMG-FE model
over a continuous (log10 size, frequency) box: each AL step maximizes the
predictive standard deviation with multi-start L-BFGS-B using the GP's
*analytic* input-space gradients, then runs a noisy experiment at the
chosen point.

Run:  python examples/continuous_al.py  [--iterations 15]
"""

import argparse

import numpy as np

from repro.al import ContinuousActiveLearner
from repro.perfmodel import PERFORMANCE_NOISE, RuntimeModel
from repro.viz import heatmap, line_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    model = RuntimeModel()
    rng = np.random.default_rng(args.seed)

    def experiment(x):
        """One (simulated) HPGMG-FE run at a continuous configuration."""
        size = 10.0 ** x[0]
        freq = float(x[1])
        clean = float(model.runtime("poisson1", size, 32, freq))
        return float(np.log10(PERFORMANCE_NOISE.apply(clean, rng)))

    bounds = [[np.log10(2e3), np.log10(1e9)], [1.2, 2.4]]
    learner = ContinuousActiveLearner(
        experiment, bounds, strategy="variance", rng=args.seed, n_starts=6
    )
    learner.seed()
    print("iter    log10(size)   freq[GHz]   measured log10(runtime)   max-sd")
    for i in range(args.iterations):
        x, y = learner.step()
        print(f"{i + 1:4d} {x[0]:14.2f} {x[1]:11.2f} {y:25.3f} "
              f"{learner.trace.acquisition_values[-1]:8.3f}")

    X, y = learner.trace.as_arrays()
    print()
    print(line_chart(
        {"x visited": (X[:, 0], X[:, 1])},
        title="continuously-optimized experiment locations",
        x_label="log10 problem size", y_label="frequency [GHz]",
    ))

    gp = learner.model
    s_axis = np.linspace(bounds[0][0], bounds[0][1], 14)
    f_axis = np.linspace(bounds[1][0], bounds[1][1], 10)
    SS, FF = np.meshgrid(s_axis, f_axis, indexing="ij")
    query = np.column_stack([SS.ravel(), FF.ravel()])
    mean, sd = gp.predict(query, return_std=True)
    print("\nlearned log10 runtime surface:")
    print(heatmap(mean.reshape(14, 10), x_label="freq ->", y_label="size",
                  mark_max=False))
    print("\nresidual predictive SD:")
    print(heatmap(sd.reshape(14, 10), x_label="freq ->", y_label="size"))


if __name__ == "__main__":
    main()
